// Test cases for the poollease analyzer over the memtier lease API:
// `lease, ok := tier.Get(path)` acquires on the ok==true branch, and
// the canonical handoff is a Release method value stored into an
// rpc.LeasedResp composite literal.
package a

import (
	"memtier"
	"rpc"
)

// okTierDefer is the canonical miss-guard-then-defer shape.
func okTierDefer(t *memtier.Tier) {
	lease, ok := t.Get("p")
	if !ok {
		return
	}
	defer lease.Release()
	use(lease.Bytes())
}

// okTierIfInit acquires in the if-init; the lease lives only in the
// hit branch.
func okTierIfInit(t *memtier.Tier) {
	if lease, ok := t.Get("p"); ok {
		defer lease.Release()
		use(lease.Bytes())
	}
}

// okTierRespHandoff is the server read path's shape: the Release
// method value rides the response and the flush path owns the lease.
func okTierRespHandoff(t *memtier.Tier) rpc.LeasedResp {
	if lease, ok := t.Get("p"); ok {
		return rpc.LeasedResp{Status: 0, Ext: lease.Bytes(), Release: lease.Release}
	}
	return rpc.LeasedResp{Status: 1}
}

// okTierRespViaLocal stores the handoff literal in a local first.
func okTierRespViaLocal(t *memtier.Tier) rpc.LeasedResp {
	lease, ok := t.Get("p")
	if !ok {
		return rpc.LeasedResp{Status: 1}
	}
	lr := rpc.LeasedResp{Release: lease.Release}
	return lr
}

// okTierInlineRelease releases on the error path before returning.
func okTierInlineRelease(t *memtier.Tier) rpc.LeasedResp {
	if lease, ok := t.Get("p"); ok {
		if len(lease.Bytes()) == 0 {
			lease.Release()
			return rpc.LeasedResp{Status: 2}
		}
		return rpc.LeasedResp{Ext: lease.Bytes(), Release: lease.Release}
	}
	return rpc.LeasedResp{Status: 1}
}

// leakTierEarlyReturn forgets the lease on a branch added between the
// acquisition and the release — the regression class under test.
func leakTierEarlyReturn(t *memtier.Tier, cond bool) {
	lease, ok := t.Get("p")
	if !ok {
		return
	}
	if cond {
		return // want `memtier.Tier.Get lease acquired at .* is not released on this path`
	}
	lease.Release()
}

// leakTierIfInit leaks inside the hit branch.
func leakTierIfInit(t *memtier.Tier, cond bool) {
	if lease, ok := t.Get("p"); ok {
		if cond {
			return // want `memtier.Tier.Get lease acquired at .* is not released on this path`
		}
		lease.Release()
	}
}

// useTierAfterRelease touches the leased bytes after the pool may have
// reused them.
func useTierAfterRelease(t *memtier.Tier) {
	lease, ok := t.Get("p")
	if !ok {
		return
	}
	lease.Release()
	use(lease.Bytes()) // want `lease used after the pooled lease was released`
}

// discardTier can never release a hit's lease.
func discardTier(t *memtier.Tier) {
	t.Get("p") // want `memtier.Tier.Get result discarded`
}

// blankTierLease can never release either; Has is the existence check.
func blankTierLease(t *memtier.Tier) bool {
	_, ok := t.Get("p") // want `memtier.Tier.Get lease assigned to _`
	return ok
}
