// Test cases for the hotpathlock analyzer.
package a

import (
	"fmt"
	"sync"
)

type store struct {
	mu    sync.Mutex
	once  sync.Once
	items map[string]int
}

//ftc:hotpath
func (s *store) LockedGet(k string) int {
	s.mu.Lock() // want `hot-path function LockedGet acquires \(\*sync\.Mutex\)\.Lock`
	defer s.mu.Unlock()
	return s.items[k]
}

//ftc:hotpath
func (s *store) LazyInit() {
	s.once.Do(func() {}) // want `hot-path function LazyInit acquires \(\*sync\.Once\)\.Do`
}

//ftc:hotpath
func (s *store) Put(k string, v int) {
	s.items[k] = v // want `hot-path function Put writes a non-local map`
}

//ftc:hotpath
func (s *store) Drop(k string) {
	delete(s.items, k) // want `hot-path function Drop deletes from a non-local map`
}

//ftc:hotpath
func (s *store) Describe(k string) string {
	return fmt.Sprintf("item %s", k) // want `hot-path function Describe calls fmt\.Sprintf`
}

func slowHelper(s *store) {
	s.mu.Lock()
	s.mu.Unlock()
}

//ftc:hotpath
func (s *store) Indirect() {
	slowHelper(s) // want `hot-path function Indirect calls slowHelper, which acquires`
}

// LocalMap builds and fills a map local to the call: single-goroutine
// by construction, allowed.
//
//ftc:hotpath
func (s *store) LocalMap() int {
	seen := map[string]int{}
	seen["x"] = 1
	delete(seen, "x")
	return len(seen)
}

// trusted is itself marked, so callers do not re-analyze it.
//
//ftc:hotpath
func trusted() {}

//ftc:hotpath
func (s *store) CallsTrusted() {
	trusted()
}

// ReadOnly demonstrates the allowed operations: map reads and
// non-blocking sync calls (Unlock is release, not acquire).
//
//ftc:hotpath
func (s *store) ReadOnly(k string) (int, bool) {
	v, ok := s.items[k]
	return v, ok
}

//ftc:hotpath
func (s *store) Suppressed() {
	//ftclint:ignore hotpathlock startup-only: runs before the ring is published to readers
	s.mu.Lock()
	s.mu.Unlock()
}
