// Test cases for the spanend analyzer.
package a

import (
	"context"
	"errors"

	"trace"
)

type holder struct{ sp *trace.Span }

func take(sp *trace.Span) {}

func work() error { return nil }

// okDefer is the canonical shape: acquire, defer End.
func okDefer(ctx context.Context) error {
	ctx, sp := trace.StartTrace(ctx, "op")
	defer sp.End()
	_ = ctx
	return work()
}

// okDeferClosure ends inside a deferred closure (the SetError+End
// pattern around named returns).
func okDeferClosure(ctx context.Context) (err error) {
	_, sp := trace.StartTrace(ctx, "op")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	return work()
}

// okInlineBothBranches ends explicitly on every branch.
func okInlineBothBranches(ctx context.Context, fail bool) error {
	_, sp := trace.StartSpan(ctx, "op")
	if fail {
		sp.End()
		return errors.New("fail")
	}
	sp.End()
	return nil
}

// okChild covers StartChild with an inline End.
func okChild(parent *trace.Span) {
	st := parent.StartChild("storage")
	st.End()
}

// okRemote covers StartRemote with a defer.
func okRemote(tid trace.TraceID, psid trace.SpanID) {
	sp := trace.StartRemote("server.op", tid, psid)
	defer sp.End()
}

// okHandoffCall passes the span on; the callee owns it now.
func okHandoffCall(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "op")
	take(sp)
}

// okHandoffReturn returns the span; the caller owns it now.
func okHandoffReturn(tid trace.TraceID) *trace.Span {
	sp := trace.StartRemote("op", tid, 0)
	return sp
}

// okHandoffField stores the span into a non-local location; the
// holder's owner ends it (the ingest batch span pattern).
func okHandoffField(h *holder, ctx context.Context) {
	_, sp := trace.StartTrace(ctx, "batch")
	h.sp = sp
}

// okGoroutineHandoff transfers the obligation into the goroutine.
func okGoroutineHandoff(ctx context.Context) {
	_, sp := trace.StartTrace(ctx, "async")
	go func() {
		defer sp.End()
		_ = work()
	}()
}

// okInsideClosure starts and ends within a goroutine body — checked as
// a function of its own (the detached push/recache pattern).
func okInsideClosure(ctx context.Context) {
	go func() {
		_, sp := trace.StartTrace(context.Background(), "detached")
		defer sp.End()
		_ = work()
	}()
	_ = ctx
}

// okLoopPerIteration ends each iteration's span before the next.
func okLoopPerIteration(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, sp := trace.StartSpan(ctx, "attempt")
		sp.SetError(work())
		sp.End()
	}
}

// leakEarlyReturn is the regression class the pass exists for: an
// early return added between the Start and the End.
func leakEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := trace.StartTrace(ctx, "op")
	if fail {
		return errors.New("fail") // want `span started at .* is not ended on this path`
	}
	sp.End()
	return nil
}

// leakErrorPath has no error-path exemption: Start* cannot fail, so
// even an error return must End (the nil-safe End costs nothing).
func leakErrorPath(ctx context.Context) error {
	_, sp := trace.StartSpan(ctx, "op")
	if err := work(); err != nil {
		return err // want `span started at .* is not ended on this path`
	}
	sp.End()
	return nil
}

// leakFallthrough never ends at all.
func leakFallthrough(ctx context.Context) {
	_, sp := trace.StartSpan(ctx, "op")
	_ = sp
} // want `span started at .* is not ended on this path`

// leakLoopReentry lets the span fall into the next iteration.
func leakLoopReentry(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, sp := trace.StartSpan(ctx, "attempt")
		if work() == nil {
			continue // want `span started at .* is not ended on this path`
		}
		sp.End()
	}
}

// leakInsideClosure leaks within a goroutine body.
func leakInsideClosure() {
	go func() {
		_, sp := trace.StartTrace(context.Background(), "detached")
		_ = sp
	}() // want `span started at .* is not ended on this path`
}

// discard can never End.
func discard(ctx context.Context) {
	trace.StartRemote("op", 1, 2) // want `span discarded`
}

// blankSpan can never End either.
func blankSpan(ctx context.Context) {
	_, _ = trace.StartTrace(ctx, "op") // want `span assigned to _`
}

// goroutineCapture hands the span to a goroutine that never ends it.
func goroutineCapture(ctx context.Context) {
	_, sp := trace.StartTrace(ctx, "op")
	go take(sp) // want `goroutine captures the trace span without ending it`
	sp.End()
}

// suppressed is a justified finding with an explicit ignore.
func suppressed(ctx context.Context, fail bool) error {
	_, sp := trace.StartTrace(ctx, "op")
	if fail {
		//ftclint:ignore spanend process is exiting; the trace is intentionally dropped
		return errors.New("fail")
	}
	sp.End()
	return nil
}
