// Test cases for the gostop analyzer: goroutine stop paths.
package a

// spin loops forever with no exit anywhere inside the loop.
func spin() {
	for {
	}
}

// indirect is unstoppable by propagation: it calls spin.
func indirect() {
	spin()
}

// drain ranges over a channel: closing the channel stops it.
func drain(ch chan int) {
	for range ch {
	}
}

// until loops forever but returns on a condition.
func until(ch chan int) {
	for {
		if <-ch == 0 {
			return
		}
	}
}

// selector parks in a select whose case returns: an exit like any
// other.
func selector(ch chan int, done chan struct{}) {
	for {
		select {
		case <-ch:
		case <-done:
			return
		}
	}
}

func spawns(ch chan int, done chan struct{}) {
	go spin()     // want `goroutine started here has no stop path: for-loop at .* never breaks or returns`
	go indirect() // want `goroutine started here has no stop path: calls gostop\.spin, which has no stop path`
	go drain(ch)
	go until(ch)
	go selector(ch, done)
	go func() { // want `goroutine started here has no stop path: for-loop at .* never breaks or returns`
		for {
		}
	}()
	go func() {
		for range ch {
		}
	}()
}

// suppressedSpawn is the documented process-lifetime daemon shape.
func suppressedSpawn() {
	//ftclint:ignore gostop fixture daemon: runs for the life of the process by design
	go spin()
}
