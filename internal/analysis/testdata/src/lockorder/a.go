// Test cases for the lockorder analyzer: blocking-while-holding and
// same-package lock-order cycles.
package a

import (
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	ch chan int
}

type T struct {
	mu sync.Mutex
}

// sendLocked blocks on a channel send with the mutex held.
func (s *S) sendLocked(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `sends on a channel while holding lockorder\.S\.mu`
}

// recvLocked blocks on a receive with the mutex held.
func (s *S) recvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `receives from a channel while holding lockorder\.S\.mu`
}

// sleepLocked reaches a builtin-blocking call under the lock.
func (s *S) sleepLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `which blocks .* while holding lockorder\.S\.mu`
	s.mu.Unlock()
}

// waitLocked blocks on a WaitGroup with the mutex held.
func (s *S) waitLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `which blocks .* while holding lockorder\.S\.mu`
}

// selectLocked parks in a no-default select under the lock.
func (s *S) selectLocked(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocks in select while holding lockorder\.S\.mu`
	case s.ch <- 1:
	case <-done:
	}
}

// tryNotify is the non-blocking shape: a select with a default never
// parks, so holding the lock across it is fine.
func (s *S) tryNotify() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// sendUnlocked releases before the send: no finding.
func (s *S) sendUnlocked(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// viaHelper blocks through a same-package callee: the helper's summary
// carries the blocking verdict to the locked caller.
func helperRecv(s *S) int { return <-s.ch }

func (s *S) lockedHelper() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return helperRecv(s) // want `calls lockorder\.helperRecv, which blocks .* while holding lockorder\.S\.mu`
}

// abFirst and baSecond take the two locks in opposite orders; the edge
// recorded here first closes the cycle and carries the report.
func abFirst(s *S, t *T) {
	s.mu.Lock()
	t.mu.Lock() // want `lock-order deadlock risk: cycle`
	t.mu.Unlock()
	s.mu.Unlock()
}

func baSecond(s *S, t *T) {
	t.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	t.mu.Unlock()
}

// suppressed documents a send whose receiver provably never takes mu.
func (s *S) suppressed(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ftclint:ignore lockorder the drain side never takes mu, so the bounded send always completes
	s.ch <- v
}
