// Test cases for the errclass analyzer. The package is named hvac
// because the pass keys on the package name, and the enum by its type
// name errClass.
package hvac

import "rpc"

type errClass int

const (
	classOK errClass = iota
	classApp
	classTimeout
	classConn
)

func exhaustiveOK(c errClass) int {
	switch c {
	case classOK:
		return 0
	case classApp:
		return 1
	case classTimeout:
		return 2
	case classConn:
		return 3
	}
	return -1
}

func missingConn(c errClass) int {
	switch c { // want `switch over errClass is not exhaustive: missing \[classConn\]`
	case classOK, classApp:
		return 0
	case classTimeout:
		return 1
	default:
		return 2
	}
}

func timeoutRetried(c errClass, p rpc.RetryPolicy) {
	for i := 0; i < p.Retries(); i++ {
		switch c {
		case classOK, classApp:
			return
		case classConn:
			p.Backoff(i)
		case classTimeout:
			p.Backoff(i) // want `rpc\.RetryPolicy\.Backoff called in a classTimeout clause`
			continue     // want `continue in a classTimeout clause retries a timeout-class failure`
		}
	}
}

// timeoutHandledOK records the evidence and falls out of the loop —
// the correct consumption of a timeout.
func timeoutHandledOK(c errClass, p rpc.RetryPolicy) bool {
	for i := 0; i < p.Retries(); i++ {
		switch c {
		case classOK:
			return true
		case classApp:
			return false
		case classConn:
			p.Backoff(i)
			continue
		case classTimeout:
			return false
		}
	}
	return false
}

func suppressedTimeoutRetry(c errClass) {
	for {
		switch c {
		case classOK, classApp, classConn:
			return
		case classTimeout:
			//ftclint:ignore errclass warmup probe loop deliberately re-probes timeouts before serving
			continue
		}
	}
}
