// Package dep exports a blocking, context-aware function; lockorder's
// LockFact for it is what ctxflow's second tier consumes downstream.
package dep

import "context"

// Wait blocks until the channel delivers or ctx is done.
func Wait(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}
