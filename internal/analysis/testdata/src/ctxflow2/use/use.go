// Package use fabricates a root context and feeds it to an imported
// blocking callee: the blocking verdict arrived as a cross-package
// lockorder fact, upgrading the finding to ctxflow's second tier.
package use

import (
	"context"

	"ctxflow2/dep"
)

// detached roots an unbounded blocking call in another package.
func detached(ch chan int) int {
	return dep.Wait(context.Background(), ch) // want `context\.Background\(\) roots an unbounded blocking call`
}

// threaded passes its own ctx through: clean.
func threaded(ctx context.Context, ch chan int) int {
	return dep.Wait(ctx, ch)
}
