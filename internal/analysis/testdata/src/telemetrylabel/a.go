// Test cases for the telemetrylabel analyzer.
package a

import (
	"fmt"

	"telemetry"
)

type NodeID string

type server struct {
	reads int64
}

func (s *server) loadReads() int64 { return s.reads }

func register(reg *telemetry.Registry, node NodeID, key string, err error) {
	// Bounded values: constants, plain variables, named-type conversions.
	reg.Counter("ftc_reads_total", "node", string(node))
	reg.Gauge("ftc_depth", "tier", "nvme")
	shard := "s0"
	reg.Histogram("ftc_read_seconds", "shard", shard)

	// Unbounded values.
	reg.Counter("ftc_reads_total", "key", key+"!")                // want `string concatenation builds per-request values`
	reg.Counter("ftc_errors_total", "err", err.Error())           // want `unbounded label value \(result of \(error\)\.Error\)`
	reg.Gauge("ftc_depth", "req", fmt.Sprintf("%s", key))         // want `unbounded label value \(result of fmt\.Sprintf\)`
	reg.Histogram("ftc_read_seconds", "raw", string([]byte(key))) // want `conversion from raw data`

	// Keys must be constant.
	reg.Counter("ftc_reads_total", key, "x") // want `label key must be a constant string`

	// Splatted pairs cannot be checked.
	pairs := []string{"node", "n1"}
	reg.Counter("ftc_reads_total", pairs...) // want `label pairs expanded with \.\.\. cannot be checked`
}

func registerFuncs(reg *telemetry.Registry, s *server, key string) {
	// Label positions shift by one for the *Func variants.
	reg.CounterFunc("ftc_server_reads_total", s.loadReads, "node", "n1")
	reg.GaugeFunc("ftc_queue_depth", s.loadReads, "key", key[:4]) // want `unbounded label value \(computed expression\)`
}

func suppressed(reg *telemetry.Registry, trace string) {
	//ftclint:ignore telemetrylabel trace IDs are sampled to 1% and the debug registry is flushed hourly
	reg.Counter("ftc_debug_traces_total", "trace", trace+"!")
}
