// Test cases for the atomicfield analyzer.
package a

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) racyRead() int64 {
	return c.n // want `plain access to field n, which is accessed atomically`
}

func (c *counter) racyWrite() {
	c.n = 0 // want `plain access to field n, which is accessed atomically`
}

// plainOnly is fine: hits is never accessed atomically anywhere.
func (c *counter) plainOnly() int64 {
	c.hits++
	return c.hits
}

// newCounter is the pre-publication initialization idiom: composite
// literal keys are exempt.
func newCounter() *counter {
	return &counter{n: 0, hits: 0}
}

func (c *counter) suppressed() int64 {
	//ftclint:ignore atomicfield snapshot path: writers are quiesced under the registry lock here
	return c.n
}
