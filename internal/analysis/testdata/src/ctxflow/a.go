// Test cases for the ctxflow analyzer: fabricated root contexts
// (tiered by certainty) and discarded ctx parameters.
package a

import "context"

// bg at package level is a detached-lifetime singleton: tier three.
var bg = context.Background() // want `context\.Background\(\) in library code`

// init owns its context; process roots are exempt.
func init() {
	_ = context.Background()
}

func doCtx(ctx context.Context) error { return ctx.Err() }

// wait blocks in a select; lockorder summarizes that, and ctxflow's
// second tier reads the summary back as a fact.
func wait(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// threads is the correct shape: the incoming ctx reaches the callee.
func threads(ctx context.Context, ch chan int) int {
	return wait(ctx, ch)
}

// replaces has a live incoming ctx and fabricates a root anyway.
func replaces(ctx context.Context, ch chan int) {
	_ = doCtx(ctx)
	wait(context.Background(), ch) // want `context\.Background\(\) discards the incoming ctx; pass ctx instead`
}

// roots has no incoming ctx and feeds the fresh root straight into a
// callee whose lockorder fact says it blocks: tier two.
func roots(ch chan int) int {
	return wait(context.Background(), ch) // want `context\.Background\(\) roots an unbounded blocking call`
}

// fabricates feeds a non-blocking callee: only the weak tier fires.
func fabricates() error {
	return doCtx(context.Background()) // want `context\.Background\(\) in library code`
}

// discards blanks the ctx it was handed while calling ctx-aware code.
func discards(ctx context.Context, ch chan int) {
	_ = ctx                  // want `incoming context "ctx" is discarded`
	wait(context.TODO(), ch) // want `context\.TODO\(\) discards the incoming ctx`
}

// ignores never mentions ctx at all but has somewhere to thread it.
func ignores(ctx context.Context, ch chan int) int { // want `incoming context "ctx" is never used`
	return wait(nil, ch)
}

// plainHelper has no ctx parameter and calls nothing ctx-aware: the
// unused-parameter rule must stay quiet about non-ctx functions.
func plainHelper(n int) int { return n + 1 }

// suppressed is the documented detached-root shape.
func suppressed() context.Context {
	//ftclint:ignore ctxflow lifecycle root owned by the Start/Stop pair in this fixture
	return context.Background()
}
