// Package trace is a minimal stub of the repro trace package for
// analysistest: the spanend analyzer keys on the package name and the
// Start*/StartChild/End shapes, so the stub only needs those.
package trace

import "context"

type TraceID uint64

type SpanID uint64

type Span struct{ ended bool }

func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

func (s *Span) Annotate(key, value string) {}

func (s *Span) SetError(err error) {}

func (s *Span) StartChild(name string) *Span { return &Span{} }

func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func StartRemote(name string, tid TraceID, parent SpanID) *Span {
	return &Span{}
}
