// Package use acquires pooled leases and hands them to imported
// callees: whether the handoff discharges the obligation depends on
// the callee's LeaseSinkFact.
package use

import (
	"io"

	"poollease2/dep"
	"wire"
)

// okHandoff passes the lease to a cross-package sink: discharged.
func okHandoff(r io.Reader) {
	_, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return
	}
	dep.Sink(lease)
}

// leakBorrow hands the lease to a callee that provably never releases
// it: the obligation stays here, unmet.
func leakBorrow(r io.Reader) error {
	_, lease, err := wire.ReadFramePooled(r, 1<<20)
	if err != nil {
		return err
	}
	dep.Borrow(lease)
	return nil // want `lease acquired at .* is not released on this path`
}
