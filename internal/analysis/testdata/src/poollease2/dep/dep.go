// Package dep declares lease-consuming and lease-borrowing helpers;
// poollease exports a LeaseSinkFact only for the consumer, and the
// importing package's handoff analysis keys on that difference.
package dep

import "wire"

// Sink consumes the lease: a caller that hands its lease here has
// discharged the release obligation.
func Sink(b *wire.Buf) { b.Release() }

// Borrow inspects the lease but never releases it.
func Borrow(b *wire.Buf) bool { return b != nil }
