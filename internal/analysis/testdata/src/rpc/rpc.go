// Package rpc stubs the repro rpc package's RetryPolicy for
// analysistest; the errclass analyzer keys on the package name and the
// receiver type name.
package rpc

import (
	"context"
	"time"
)

type RetryPolicy struct {
	MaxRetries int
}

// LeasedResp mirrors the repro rpc.LeasedResp shape: a response whose
// Ext payload stays leased until the flush path calls Release.
type LeasedResp struct {
	Status  uint16
	Head    []byte
	Ext     []byte
	Release func()
}

func (p RetryPolicy) Retries() int                                 { return p.MaxRetries }
func (p RetryPolicy) Backoff(attempt int) time.Duration            { return time.Duration(attempt) }
func (p RetryPolicy) Sleep(ctx context.Context, attempt int) error { return nil }
