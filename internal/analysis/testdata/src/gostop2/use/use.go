// Package use spawns goroutines running imported functions: the
// unstoppability verdict crosses the package boundary as a GoStopFact.
package use

import "gostop2/dep"

func spawns(ch chan int) {
	go dep.Spin() // want `goroutine started here has no stop path: for-loop at .* never breaks or returns`
	go dep.Serve(ch)
}
