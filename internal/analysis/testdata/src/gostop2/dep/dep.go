// Package dep exports an unstoppable worker; its GoStopFact travels to
// importers so their `go` statements can be judged.
package dep

// Spin loops forever with no exit.
func Spin() {
	for {
	}
}

// Serve ranges over the channel: closing it stops the worker.
func Serve(ch chan int) {
	for range ch {
	}
}
