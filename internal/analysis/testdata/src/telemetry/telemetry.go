// Package telemetry stubs the repro telemetry Registry surface for
// analysistest; the telemetrylabel analyzer keys on the package name,
// the Registry type name, and the five method names.
package telemetry

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string, labelPairs ...string) *Counter             { return &Counter{} }
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge                 { return &Gauge{} }
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram         { return &Histogram{} }
func (r *Registry) CounterFunc(name string, fn func() int64, labelPairs ...string) {}
func (r *Registry) GaugeFunc(name string, fn func() int64, labelPairs ...string)   {}
