// Package memtier is a minimal stub of the repro memtier package for
// analysistest: the poollease analyzer keys on the package name and the
// (*Tier).Get / (*Lease).Release shapes, so the stub only needs those.
package memtier

type Lease struct{ released bool }

func (l *Lease) Release() {
	if l != nil {
		l.released = true
	}
}

func (l *Lease) Bytes() []byte { return nil }

type Tier struct{}

func (t *Tier) Get(path string) (*Lease, bool) { return nil, false }

func (t *Tier) Has(path string) bool { return false }
