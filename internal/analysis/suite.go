// Package analysis assembles the ftclint analyzer suite: the custom
// static checks that keep FT-Cache's concurrency and resource
// invariants — introduced across PRs 1–4 as comments and review lore —
// machine-enforced. See DESIGN.md §12 for the rule catalogue and
// cmd/ftclint for the driver (standalone or `go vet -vettool`).
package analysis

import (
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/errclass"
	"repro/internal/analysis/passes/hotpathlock"
	"repro/internal/analysis/passes/poollease"
	"repro/internal/analysis/passes/spanend"
	"repro/internal/analysis/passes/telemetrylabel"
)

// All returns the full ftclint suite in stable order.
func All() []*ftc.Analyzer {
	return []*ftc.Analyzer{
		atomicfield.Analyzer,
		errclass.Analyzer,
		hotpathlock.Analyzer,
		poollease.Analyzer,
		spanend.Analyzer,
		telemetrylabel.Analyzer,
	}
}
