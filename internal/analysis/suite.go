// Package analysis assembles the ftclint analyzer suite: the custom
// static checks that keep FT-Cache's concurrency and resource
// invariants — introduced across PRs 1–4 as comments and review lore —
// machine-enforced. See DESIGN.md §12 for the per-package rule
// catalogue and §17 for the interprocedural layer (facts, the shared
// call graph, and the cross-package analyzers); cmd/ftclint is the
// driver (standalone or `go vet -vettool`).
package analysis

import (
	"repro/internal/analysis/ftc"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/errclass"
	"repro/internal/analysis/passes/gostop"
	"repro/internal/analysis/passes/hotpathlock"
	"repro/internal/analysis/passes/lockorder"
	"repro/internal/analysis/passes/poollease"
	"repro/internal/analysis/passes/spanend"
	"repro/internal/analysis/passes/telemetrylabel"
)

// All returns the full ftclint suite in stable order. The shared
// callgraph pass is not listed: it reports nothing and is pulled in
// through Requires by every analyzer that consumes it (ftc.Expand).
func All() []*ftc.Analyzer {
	return []*ftc.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		errclass.Analyzer,
		gostop.Analyzer,
		hotpathlock.Analyzer,
		lockorder.Analyzer,
		poollease.Analyzer,
		spanend.Analyzer,
		telemetrylabel.Analyzer,
	}
}
