package dltrain

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/hvac"
	"repro/internal/workload"
)

// FailureEvent schedules a node failure at a batch boundary.
type FailureEvent struct {
	// Epoch and Step locate the boundary (0-based) just before which the
	// failure strikes.
	Epoch int
	Step  int
	// Node is the victim; an empty Node picks the rank-0 node's successor
	// (a live node that is not rank 0's, keeping the run observable).
	Node core.NodeID
	// Mode is how the node dies.
	Mode core.FailureMode
}

// Config configures a live training run.
type Config struct {
	// Cluster is the running FT-Cache deployment.
	Cluster *core.Cluster
	// Dataset must already be staged on the cluster's PFS.
	Dataset interface {
		FilePath(i int) string
		NumFilesCount() int
	}
	// Workers is the number of data-parallel ranks. Rank i is co-located
	// with cluster node i%N: when that node fails, the rank dies with it
	// (compute and cache share the node on Frontier).
	Workers int
	// Epochs to run.
	Epochs int
	// BatchSize is samples per rank per step.
	BatchSize int
	// Seed drives the per-epoch shuffles.
	Seed int64
	// ComputePerBatch simulates GPU time per step (0 for I/O-only runs).
	ComputePerBatch time.Duration
	// Failures is the injection plan.
	Failures []FailureEvent
	// MaxRestarts bounds elastic restarts; <= 0 selects 8.
	MaxRestarts int

	// Checkpointer, when set, saves model state after epochs (see
	// CheckpointEvery) and enables Resume.
	Checkpointer *checkpoint.Checkpointer
	// CheckpointEvery saves after every n-th completed epoch; <= 0 with
	// a Checkpointer set selects 1 (every epoch).
	CheckpointEvery int
	// Resume starts from the latest checkpoint instead of epoch 0 — how
	// a job killed outright (e.g. NoFT) continues in its next submission.
	Resume bool
	// State produces the opaque model state for epoch checkpoints; nil
	// selects a deterministic placeholder (the harness trains no real
	// model).
	State func(epoch int) []byte

	// Validation, when set, is read in full (unshuffled, sharded across
	// live ranks) after every training epoch — the CosmoFlow validation
	// pass over the 65,536-sample split.
	Validation interface {
		FilePath(i int) string
		NumFilesCount() int
	}
}

// DatasetAdapter adapts workload.Dataset (method name NumFiles is a
// field there) to the Config.Dataset interface.
type DatasetAdapter struct {
	Path  func(i int) string
	Count int
}

// FilePath implements Config.Dataset.
func (d DatasetAdapter) FilePath(i int) string { return d.Path(i) }

// NumFilesCount implements Config.Dataset.
func (d DatasetAdapter) NumFilesCount() int { return d.Count }

// FromWorkload adapts a workload.Dataset.
func FromWorkload(ds workload.Dataset) DatasetAdapter {
	return DatasetAdapter{Path: ds.FilePath, Count: ds.NumFiles}
}

// EpochReport describes one completed epoch.
type EpochReport struct {
	Epoch    int
	Duration time.Duration
	// Workers is the rank count that finished the epoch.
	Workers int
	// Restarts counts elastic rollbacks within this epoch.
	Restarts int
	// Samples actually read in the final (successful) pass.
	Samples int
	// ValidationSamples read after the epoch (0 when no validation set).
	ValidationSamples int
}

// Report is the outcome of a training run.
type Report struct {
	Epochs   []EpochReport
	Total    time.Duration
	Aborted  bool
	AbortErr error
	// FinalWorkers is the surviving rank count.
	FinalWorkers int
	// ClientStats aggregates all ranks' HVAC client counters.
	ClientStats hvac.ClientStats
	// ResumedFromEpoch is the checkpointed epoch the run continued
	// after, or -1 for a fresh start.
	ResumedFromEpoch int
}

// ErrTooManyRestarts reports an elastic-restart loop.
var ErrTooManyRestarts = errors.New("dltrain: exceeded restart budget")

type rank struct {
	id     int
	node   core.NodeID
	client *hvac.Client
	alive  bool
}

// Trainer executes data-parallel epochs against a live cluster.
type Trainer struct {
	cfg   Config
	ranks []*rank
}

// New validates cfg and allocates one HVAC client per rank.
func New(cfg Config) (*Trainer, error) {
	if cfg.Cluster == nil || cfg.Dataset == nil {
		return nil, errors.New("dltrain: Cluster and Dataset are required")
	}
	if cfg.Workers <= 0 || cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, errors.New("dltrain: Workers, Epochs, BatchSize must be positive")
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.Checkpointer != nil && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.State == nil {
		cfg.State = func(epoch int) []byte {
			return []byte(fmt.Sprintf("placeholder-state-epoch-%d", epoch))
		}
	}
	nodes := cfg.Cluster.Nodes()
	tr := &Trainer{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		cli, _, err := cfg.Cluster.NewClient()
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("dltrain: client for rank %d: %w", i, err)
		}
		tr.ranks = append(tr.ranks, &rank{
			id:     i,
			node:   nodes[i%len(nodes)],
			client: cli,
			alive:  true,
		})
	}
	return tr, nil
}

// Close releases all rank clients.
func (t *Trainer) Close() {
	for _, r := range t.ranks {
		if r.client != nil {
			r.client.Close()
		}
	}
}

func (t *Trainer) aliveRanks() []*rank {
	out := make([]*rank, 0, len(t.ranks))
	for _, r := range t.ranks {
		if r.alive {
			out = append(out, r)
		}
	}
	return out
}

// killRanksOn marks every rank co-located with node as dead (Horovod
// elastic removes them from the communicator).
func (t *Trainer) killRanksOn(node core.NodeID) int {
	n := 0
	for _, r := range t.ranks {
		if r.alive && r.node == node {
			r.alive = false
			n++
		}
	}
	return n
}

// pendingFailure returns the injection event due at (epoch, step), if any.
func (t *Trainer) pendingFailure(epoch, step int, fired map[int]bool) (FailureEvent, int, bool) {
	for i, f := range t.cfg.Failures {
		if !fired[i] && f.Epoch == epoch && f.Step == step {
			return f, i, true
		}
	}
	return FailureEvent{}, 0, false
}

// Run executes the configured epochs and returns the report. A NoFT
// abort surfaces in Report.Aborted with the cause, not as a Run error;
// Run errors indicate harness problems (bad ranges, context cancel).
func (t *Trainer) Run(ctx context.Context) (Report, error) {
	rep := Report{ResumedFromEpoch: -1}
	fired := make(map[int]bool, len(t.cfg.Failures))
	start := time.Now()
	n := t.cfg.Dataset.NumFilesCount()

	firstEpoch := 0
	if t.cfg.Resume && t.cfg.Checkpointer != nil {
		if m, _, err := t.cfg.Checkpointer.Latest(); err == nil {
			firstEpoch = m.Epoch + 1
			rep.ResumedFromEpoch = m.Epoch
		}
	}

	for epoch := firstEpoch; epoch < t.cfg.Epochs; epoch++ {
		epochStart := time.Now()
		restarts := 0

	restartEpoch:
		workers := t.aliveRanks()
		if len(workers) == 0 {
			rep.Aborted = true
			rep.AbortErr = errors.New("dltrain: no surviving ranks")
			break
		}
		order := Shuffle(n, t.cfg.Seed, epoch)
		steps := Steps(n, len(workers), t.cfg.BatchSize)
		samples := 0

		for step := 0; step < steps; step++ {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			// Failure injection at the batch boundary.
			if ev, idx, ok := t.pendingFailure(epoch, step, fired); ok {
				fired[idx] = true
				node := ev.Node
				if node == "" {
					node = t.pickVictim()
				}
				if node != "" {
					if err := t.cfg.Cluster.Fail(node, ev.Mode); err != nil {
						return rep, err
					}
					t.killRanksOn(node)
					restarts++
					if restarts > t.cfg.MaxRestarts {
						return rep, ErrTooManyRestarts
					}
					// Horovod elastic: roll back to the epoch start with
					// the shrunken communicator.
					goto restartEpoch
				}
			}

			read, err := t.runStep(ctx, workers, order, step)
			samples += read
			if err != nil {
				if errors.Is(err, hvac.ErrAborted) {
					rep.Aborted = true
					rep.AbortErr = err
					rep.Total = time.Since(start)
					rep.FinalWorkers = len(t.aliveRanks())
					rep.ClientStats = t.aggregateStats()
					return rep, nil
				}
				return rep, err
			}
			if t.cfg.ComputePerBatch > 0 {
				time.Sleep(t.cfg.ComputePerBatch)
			}
		}

		valSamples := 0
		if t.cfg.Validation != nil {
			var err error
			valSamples, err = t.runValidation(ctx, workers)
			if err != nil {
				if errors.Is(err, hvac.ErrAborted) {
					rep.Aborted = true
					rep.AbortErr = err
					rep.Total = time.Since(start)
					rep.FinalWorkers = len(t.aliveRanks())
					rep.ClientStats = t.aggregateStats()
					return rep, nil
				}
				return rep, err
			}
		}

		rep.Epochs = append(rep.Epochs, EpochReport{
			Epoch:             epoch,
			Duration:          time.Since(epochStart),
			Workers:           len(workers),
			Restarts:          restarts,
			Samples:           samples,
			ValidationSamples: valSamples,
		})

		if t.cfg.Checkpointer != nil && (epoch+1)%t.cfg.CheckpointEvery == 0 {
			meta := checkpoint.Meta{Epoch: epoch, Workers: len(workers)}
			if err := t.cfg.Checkpointer.Save(meta, t.cfg.State(epoch)); err != nil {
				return rep, fmt.Errorf("dltrain: checkpoint after epoch %d: %w", epoch, err)
			}
		}
	}

	rep.Total = time.Since(start)
	rep.FinalWorkers = len(t.aliveRanks())
	rep.ClientStats = t.aggregateStats()
	return rep, nil
}

// runStep executes one synchronized step: every live rank reads its
// shard concurrently, then all ranks barrier. Returns samples read.
func (t *Trainer) runStep(ctx context.Context, workers []*rank, order []int, step int) (int, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, len(workers))
	total := 0
	for w, r := range workers {
		shard := Shard(order, step, w, len(workers), t.cfg.BatchSize)
		if len(shard) == 0 {
			continue
		}
		total += len(shard)
		wg.Add(1)
		go func(r *rank, shard []int) {
			defer wg.Done()
			for _, idx := range shard {
				if _, err := r.client.Read(ctx, t.cfg.Dataset.FilePath(idx)); err != nil {
					errCh <- err
					return
				}
			}
		}(r, shard)
	}
	wg.Wait() // the batch-synchronization barrier
	close(errCh)
	for err := range errCh {
		return total, err
	}
	return total, nil
}

// runValidation reads the validation split once, sharded across the live
// ranks in fixed order (validation is never shuffled).
func (t *Trainer) runValidation(ctx context.Context, workers []*rank) (int, error) {
	n := t.cfg.Validation.NumFilesCount()
	var wg sync.WaitGroup
	errCh := make(chan error, len(workers))
	for w, r := range workers {
		wg.Add(1)
		go func(w int, r *rank) {
			defer wg.Done()
			for i := w; i < n; i += len(workers) {
				if _, err := r.client.Read(ctx, t.cfg.Validation.FilePath(i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w, r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return n, nil
}

// pickVictim chooses a live node that still hosts a rank.
func (t *Trainer) pickVictim() core.NodeID {
	for _, r := range t.aliveRanks() {
		if !t.cfg.Cluster.Failed(r.node) {
			return r.node
		}
	}
	return ""
}

func (t *Trainer) aggregateStats() hvac.ClientStats {
	var agg hvac.ClientStats
	for _, r := range t.ranks {
		s := r.client.Stats()
		agg.RemoteReads += s.RemoteReads
		agg.RemoteBytes += s.RemoteBytes
		agg.ServedNVMe += s.ServedNVMe
		agg.ServedPFS += s.ServedPFS
		agg.DirectPFS += s.DirectPFS
		agg.DirectBytes += s.DirectBytes
		agg.Timeouts += s.Timeouts
		agg.FailoverReads += s.FailoverReads
	}
	return agg
}
