package dltrain

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/workload"
)

func TestShuffleIsPermutation(t *testing.T) {
	f := func(nRaw uint8, seed int64, epoch uint8) bool {
		n := int(nRaw)%200 + 1
		order := Shuffle(n, seed, int(epoch))
		if len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffleDeterministicPerEpochDistinctAcross(t *testing.T) {
	a := Shuffle(100, 42, 3)
	b := Shuffle(100, 42, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (seed, epoch) must give the same order on every rank")
		}
	}
	c := Shuffle(100, 42, 4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Error("different epochs must reshuffle")
	}
}

func TestShardAndStepsCoverExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, w, b int }{
		{100, 4, 8}, {7, 3, 2}, {1, 1, 1}, {64, 8, 8}, {65, 8, 8}, {5, 8, 2},
	} {
		order := Shuffle(tc.n, 1, 0)
		steps := Steps(tc.n, tc.w, tc.b)
		seen := make(map[int]int)
		for s := 0; s < steps; s++ {
			for w := 0; w < tc.w; w++ {
				for _, idx := range Shard(order, s, w, tc.w, tc.b) {
					seen[idx]++
				}
			}
		}
		if len(seen) != tc.n {
			t.Errorf("n=%d w=%d b=%d: covered %d samples", tc.n, tc.w, tc.b, len(seen))
		}
		for idx, c := range seen {
			if c != 1 {
				t.Errorf("n=%d w=%d b=%d: sample %d read %d times", tc.n, tc.w, tc.b, idx, c)
			}
		}
		// One more step yields nothing.
		for w := 0; w < tc.w; w++ {
			if len(Shard(order, steps, w, tc.w, tc.b)) != 0 {
				t.Errorf("step past end returned samples")
			}
		}
	}
}

func TestShardDegenerateArgs(t *testing.T) {
	if Shard([]int{1, 2}, 0, 0, 0, 2) != nil || Shard([]int{1, 2}, 0, 0, 2, 0) != nil {
		t.Error("degenerate shard args should return nil")
	}
	if Steps(10, 0, 5) != 0 || Steps(10, 5, 0) != 0 {
		t.Error("degenerate steps args should return 0")
	}
}

func liveCluster(t *testing.T, nodes int, kind ftcache.StrategyKind) (*core.Cluster, workload.Dataset) {
	t.Helper()
	c, err := core.NewCluster(core.ClusterConfig{
		Nodes:        nodes,
		Strategy:     kind,
		RPCTimeout:   60 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := workload.Dataset{Name: "t", Prefix: "t", NumFiles: 48, FileBytes: 64}
	if _, err := c.Stage(ds); err != nil {
		t.Fatal(err)
	}
	return c, ds
}

func TestTrainingNoFailures(t *testing.T) {
	c, ds := liveCluster(t, 4, ftcache.KindNVMe)
	tr, err := New(Config{
		Cluster:   c,
		Dataset:   FromWorkload(ds),
		Workers:   4,
		Epochs:    3,
		BatchSize: 4,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted {
		t.Fatalf("aborted: %v", rep.AbortErr)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("epochs = %d", len(rep.Epochs))
	}
	for _, e := range rep.Epochs {
		if e.Samples != ds.NumFiles {
			t.Errorf("epoch %d read %d samples, want %d", e.Epoch, e.Samples, ds.NumFiles)
		}
		if e.Workers != 4 || e.Restarts != 0 {
			t.Errorf("epoch %d: %+v", e.Epoch, e)
		}
	}
	// 3 epochs × 48 files, all through the cache layer.
	if rep.ClientStats.RemoteReads != int64(3*ds.NumFiles) {
		t.Errorf("remote reads = %d", rep.ClientStats.RemoteReads)
	}
	if rep.FinalWorkers != 4 {
		t.Errorf("final workers = %d", rep.FinalWorkers)
	}
}

func TestTrainingRingSurvivesFailure(t *testing.T) {
	c, ds := liveCluster(t, 4, ftcache.KindNVMe)
	tr, err := New(Config{
		Cluster:   c,
		Dataset:   FromWorkload(ds),
		Workers:   4,
		Epochs:    3,
		BatchSize: 4,
		Seed:      7,
		Failures: []FailureEvent{
			{Epoch: 1, Step: 1, Mode: core.FailUnresponsive},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted {
		t.Fatalf("ring run aborted: %v", rep.AbortErr)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("epochs completed = %d", len(rep.Epochs))
	}
	// Victim epoch rolled back once and finished with 3 workers.
	e1 := rep.Epochs[1]
	if e1.Restarts != 1 {
		t.Errorf("victim epoch restarts = %d, want 1", e1.Restarts)
	}
	if e1.Workers != 3 {
		t.Errorf("victim epoch workers = %d, want 3", e1.Workers)
	}
	if e1.Samples != ds.NumFiles {
		t.Errorf("victim epoch samples = %d", e1.Samples)
	}
	// Epoch 2 runs clean on 3 workers.
	if rep.Epochs[2].Workers != 3 || rep.Epochs[2].Restarts != 0 {
		t.Errorf("epoch 2: %+v", rep.Epochs[2])
	}
	if rep.FinalWorkers != 3 {
		t.Errorf("final workers = %d", rep.FinalWorkers)
	}
}

func TestTrainingPFSRedirectSurvivesFailure(t *testing.T) {
	c, ds := liveCluster(t, 4, ftcache.KindPFS)
	tr, err := New(Config{
		Cluster:   c,
		Dataset:   FromWorkload(ds),
		Workers:   4,
		Epochs:    3,
		BatchSize: 4,
		Seed:      3,
		Failures:  []FailureEvent{{Epoch: 1, Step: 0, Mode: core.FailKill}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted {
		t.Fatalf("pfs-redirect run aborted: %v", rep.AbortErr)
	}
	if rep.ClientStats.DirectPFS == 0 {
		t.Error("expected direct PFS reads after redirection")
	}
}

func TestTrainingNoFTAborts(t *testing.T) {
	c, ds := liveCluster(t, 3, ftcache.KindNoFT)
	tr, err := New(Config{
		Cluster:   c,
		Dataset:   FromWorkload(ds),
		Workers:   3,
		Epochs:    3,
		BatchSize: 4,
		Seed:      1,
		Failures:  []FailureEvent{{Epoch: 1, Step: 0, Mode: core.FailUnresponsive}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Fatal("NoFT training should abort on failure")
	}
	if len(rep.Epochs) != 1 {
		t.Errorf("completed epochs = %d, want 1 (the pre-failure epoch)", len(rep.Epochs))
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	c, ds := liveCluster(t, 2, ftcache.KindNVMe)
	if _, err := New(Config{Cluster: c, Dataset: FromWorkload(ds)}); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestTrainingContextCancel(t *testing.T) {
	c, ds := liveCluster(t, 2, ftcache.KindNVMe)
	tr, err := New(Config{
		Cluster:   c,
		Dataset:   FromWorkload(ds),
		Workers:   2,
		Epochs:    1000, // would run long
		BatchSize: 2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(30 * time.Millisecond); cancel() }()
	if _, err := tr.Run(ctx); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestValidationPass(t *testing.T) {
	c, ds := liveCluster(t, 3, ftcache.KindNVMe)
	val := workload.Dataset{Name: "val", Prefix: "val", NumFiles: 18, FileBytes: 32}
	if _, err := c.Stage(val); err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{
		Cluster: c, Dataset: FromWorkload(ds), Validation: FromWorkload(val),
		Workers: 3, Epochs: 2, BatchSize: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil || rep.Aborted {
		t.Fatalf("run: %v aborted=%v", err, rep.Aborted)
	}
	for _, e := range rep.Epochs {
		if e.ValidationSamples != val.NumFiles {
			t.Errorf("epoch %d validation samples = %d, want %d",
				e.Epoch, e.ValidationSamples, val.NumFiles)
		}
	}
	// Train (48) + val (18) per epoch × 2 epochs, all through the cache.
	want := int64(2 * (ds.NumFiles + val.NumFiles))
	if rep.ClientStats.RemoteReads != want {
		t.Errorf("remote reads = %d, want %d", rep.ClientStats.RemoteReads, want)
	}
}

func TestValidationSurvivesFailure(t *testing.T) {
	c, ds := liveCluster(t, 3, ftcache.KindNVMe)
	val := workload.Dataset{Name: "val", Prefix: "val", NumFiles: 12, FileBytes: 32}
	c.Stage(val)
	tr, err := New(Config{
		Cluster: c, Dataset: FromWorkload(ds), Validation: FromWorkload(val),
		Workers: 3, Epochs: 3, BatchSize: 4, Seed: 5,
		Failures: []FailureEvent{{Epoch: 1, Step: 1, Mode: core.FailUnresponsive}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil || rep.Aborted {
		t.Fatalf("run: %v aborted=%v", err, rep.Aborted)
	}
	for _, e := range rep.Epochs {
		if e.ValidationSamples != val.NumFiles {
			t.Errorf("epoch %d validation incomplete: %d", e.Epoch, e.ValidationSamples)
		}
	}
}
