package dltrain

import (
	"context"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/storage"
)

func newCheckpointer(t *testing.T) (*checkpoint.Checkpointer, *storage.PFS) {
	t.Helper()
	pfs := storage.NewPFS()
	ck, err := checkpoint.New(storage.NewNVMe(0), pfs, checkpoint.Config{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ck, pfs
}

func TestTrainingSavesCheckpoints(t *testing.T) {
	c, ds := liveCluster(t, 3, ftcache.KindNVMe)
	ck, _ := newCheckpointer(t)
	tr, err := New(Config{
		Cluster: c, Dataset: FromWorkload(ds),
		Workers: 3, Epochs: 3, BatchSize: 4, Seed: 1,
		Checkpointer: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil || rep.Aborted {
		t.Fatalf("run: %v aborted=%v", err, rep.Aborted)
	}
	if rep.ResumedFromEpoch != -1 {
		t.Errorf("fresh run resumed from %d", rep.ResumedFromEpoch)
	}
	ck.Drain()
	m, state, err := ck.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || m.Workers != 3 {
		t.Errorf("latest checkpoint meta = %+v", m)
	}
	if string(state) != "placeholder-state-epoch-2" {
		t.Errorf("state = %q", state)
	}
}

// TestResumeAfterNoFTAbort is the end-to-end fault-tolerance story the
// paper's related work assumes: a NoFT job dies mid-run, but the next
// submission resumes from the last durable checkpoint instead of epoch 0.
func TestResumeAfterNoFTAbort(t *testing.T) {
	c, ds := liveCluster(t, 3, ftcache.KindNoFT)
	ck, _ := newCheckpointer(t)

	run1, err := New(Config{
		Cluster: c, Dataset: FromWorkload(ds),
		Workers: 3, Epochs: 4, BatchSize: 4, Seed: 1,
		Checkpointer: ck,
		Failures:     []FailureEvent{{Epoch: 2, Step: 0, Mode: core.FailUnresponsive}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := run1.Run(context.Background())
	run1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Aborted {
		t.Fatal("NoFT run should abort")
	}
	if len(rep1.Epochs) != 2 {
		t.Fatalf("completed epochs before abort = %d, want 2", len(rep1.Epochs))
	}
	ck.Drain()

	// "Resubmission": a fresh cluster (the failed node replaced) and a
	// trainer resuming from the checkpoint.
	c2, err := core.NewCluster(core.ClusterConfig{
		Nodes: 3, Strategy: ftcache.KindNoFT,
		RPCTimeout: 60 * time.Millisecond, TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Stage(ds); err != nil {
		t.Fatal(err)
	}
	run2, err := New(Config{
		Cluster: c2, Dataset: FromWorkload(ds),
		Workers: 3, Epochs: 4, BatchSize: 4, Seed: 1,
		Checkpointer: ck,
		Resume:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer run2.Close()
	rep2, err := run2.Run(context.Background())
	if err != nil || rep2.Aborted {
		t.Fatalf("resume run: %v aborted=%v", err, rep2.Aborted)
	}
	if rep2.ResumedFromEpoch != 1 {
		t.Errorf("resumed from %d, want 1", rep2.ResumedFromEpoch)
	}
	if len(rep2.Epochs) != 2 {
		t.Fatalf("resumed run epochs = %d, want 2 (epochs 2,3)", len(rep2.Epochs))
	}
	if rep2.Epochs[0].Epoch != 2 || rep2.Epochs[1].Epoch != 3 {
		t.Errorf("resumed epoch indices: %+v", rep2.Epochs)
	}
}

func TestCheckpointEveryN(t *testing.T) {
	c, ds := liveCluster(t, 2, ftcache.KindNVMe)
	ck, pfs := newCheckpointer(t)
	tr, err := New(Config{
		Cluster: c, Dataset: FromWorkload(ds),
		Workers: 2, Epochs: 4, BatchSize: 4, Seed: 2,
		Checkpointer:    ck,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck.Drain()
	m, _, err := ck.Latest()
	if err != nil || m.Epoch != 3 {
		t.Errorf("latest = %+v, %v (want epoch 3)", m, err)
	}
	// Saves after epochs 1 and 3 only; Keep=3 retains both + manifest.
	objs, _ := pfs.Stats()
	if objs != 3 {
		t.Errorf("durable objects = %d, want 2 checkpoints + manifest", objs)
	}
}

func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	c, ds := liveCluster(t, 2, ftcache.KindNVMe)
	ck, _ := newCheckpointer(t)
	tr, err := New(Config{
		Cluster: c, Dataset: FromWorkload(ds),
		Workers: 2, Epochs: 2, BatchSize: 4, Seed: 3,
		Checkpointer: ck,
		Resume:       true, // nothing to resume from
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedFromEpoch != -1 || len(rep.Epochs) != 2 {
		t.Errorf("fresh-resume run: %+v", rep)
	}
}
