// Package dltrain is the data-parallel training loop of the
// reproduction: the stand-in for CosmoFlow-on-Horovod (paper §V-A).
//
// Functionally it does what matters to the cache layer: every epoch it
// shuffles the sample order (triggering the random re-reads that make DL
// I/O hard, §II-A), shards batches across ranks, reads every sample
// through an HVAC client, and synchronizes ranks at batch boundaries —
// the barrier that turns one slow node into a global straggler. On node
// failure it emulates Horovod elastic: drop the dead rank, roll back to
// the start of the epoch, continue with N-1 workers.
package dltrain

import (
	"math/rand"
)

// Shuffle returns a deterministic permutation of [0, n) for the given
// epoch: the per-epoch reshuffling of the dataset. Every rank computes
// the same permutation from the shared seed, as Horovod's samplers do.
func Shuffle(n int, seed int64, epoch int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed + int64(epoch)*1_000_003))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// Shard returns the sample indices rank reads in the given global step:
// batch b of worker w out of W, each of size batchSize, drawn from
// order. The final step may be short or empty.
func Shard(order []int, step, rank, workers, batchSize int) []int {
	if workers <= 0 || batchSize <= 0 {
		return nil
	}
	stride := workers * batchSize
	start := step*stride + rank*batchSize
	if start >= len(order) {
		return nil
	}
	end := start + batchSize
	if end > len(order) {
		end = len(order)
	}
	return order[start:end]
}

// Steps returns the number of global steps per epoch for n samples.
func Steps(n, workers, batchSize int) int {
	if workers <= 0 || batchSize <= 0 {
		return 0
	}
	stride := workers * batchSize
	return (n + stride - 1) / stride
}
