package slurmlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// sacct -P column layout this package reads and writes:
//
//	JobID|State|NNodes|ElapsedRaw|Submit
//
// ElapsedRaw is whole seconds; Submit is RFC 3339 without a zone
// (SLURM's %Y-%m-%dT%H:%M:%S), interpreted as UTC.

const sacctHeader = "JobID|State|NNodes|ElapsedRaw|Submit"

const sacctTime = "2006-01-02T15:04:05"

// WriteSacct serializes records in sacct -P format, header included.
func WriteSacct(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, sacctHeader); err != nil {
		return err
	}
	for _, r := range recs {
		_, err := fmt.Fprintf(bw, "%d|%s|%d|%d|%s\n",
			r.JobID, r.State, r.Nodes, int64(r.Elapsed/time.Second),
			r.Submit.UTC().Format(sacctTime))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseSacct reads sacct -P output. It tolerates a header line, blank
// lines, and job-step sub-records (JobIDs like "123.batch" or "123.0"),
// which are skipped as in the paper's job-level analysis. State
// suffixes such as "CANCELLED by 12345" are normalized. Malformed lines
// abort with a line-numbered error: silently dropping records would
// bias the statistics.
func ParseSacct(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == sacctHeader {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) != 5 {
			return nil, fmt.Errorf("slurmlog: line %d: %d fields, want 5", lineNo, len(fields))
		}
		if strings.Contains(fields[0], ".") {
			continue // job step, not a job
		}
		jobID, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("slurmlog: line %d: bad JobID %q", lineNo, fields[0])
		}
		state := normalizeState(fields[1])
		nodes, err := strconv.Atoi(fields[2])
		if err != nil || nodes < 0 {
			return nil, fmt.Errorf("slurmlog: line %d: bad NNodes %q", lineNo, fields[2])
		}
		secs, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || secs < 0 {
			return nil, fmt.Errorf("slurmlog: line %d: bad ElapsedRaw %q", lineNo, fields[3])
		}
		submit, err := time.Parse(sacctTime, fields[4])
		if err != nil {
			return nil, fmt.Errorf("slurmlog: line %d: bad Submit %q", lineNo, fields[4])
		}
		out = append(out, Record{
			JobID:   jobID,
			State:   state,
			Nodes:   nodes,
			Elapsed: time.Duration(secs) * time.Second,
			Submit:  submit.UTC(),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// normalizeState maps raw sacct states onto the study's classes.
func normalizeState(s string) State {
	s = strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasPrefix(s, "CANCELLED"):
		return StateCancelled
	case s == "FAILED", s == "OUT_OF_MEMORY":
		return StateJobFail
	case s == "NODE_FAIL":
		return StateNodeFail
	case s == "TIMEOUT":
		return StateTimeout
	case s == "COMPLETED":
		return StateCompleted
	default:
		// Unknown states (RUNNING, PENDING, REQUEUED…) are outside the
		// terminal-state study; treat as cancelled-equivalent: excluded.
		return StateCancelled
	}
}
