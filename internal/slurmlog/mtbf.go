package slurmlog

import (
	"math"
	"sort"
	"time"
)

// This file quantifies the paper's §III motivation — "as the number of
// compute nodes increases in DL, the probability of node failure
// increases correspondingly" — as an estimable model: a per-node MTBF
// extracted from the job log, and the induced survival probability of an
// N-node job of a given duration.

// MTBFReport summarizes node-failure incidence in a log.
type MTBFReport struct {
	// Span is the observation window (first to last submit).
	Span time.Duration
	// NodeFailureEvents counts jobs killed by the node-failure class
	// (NODE_FAIL + TIMEOUT, the paper's definition).
	NodeFailureEvents int
	// NodeHours is the total node-time the log's jobs consumed.
	NodeHours float64
	// PerNodeMTBF is the estimated mean time between failures of a
	// single node: NodeHours / events.
	PerNodeMTBF time.Duration
}

// EstimateMTBF computes the report. Jobs with zero elapsed time or zero
// nodes contribute nothing. Returns a zero report for empty logs.
func EstimateMTBF(recs []Record) MTBFReport {
	var rep MTBFReport
	if len(recs) == 0 {
		return rep
	}
	first, last := recs[0].Submit, recs[0].Submit
	for _, r := range recs {
		if r.Submit.Before(first) {
			first = r.Submit
		}
		if r.Submit.After(last) {
			last = r.Submit
		}
		if r.State == StateCancelled {
			continue
		}
		rep.NodeHours += float64(r.Nodes) * r.Elapsed.Hours()
		if r.IsNodeFailureClass() {
			rep.NodeFailureEvents++
		}
	}
	rep.Span = last.Sub(first)
	if rep.NodeFailureEvents > 0 {
		hours := rep.NodeHours / float64(rep.NodeFailureEvents)
		rep.PerNodeMTBF = time.Duration(hours * float64(time.Hour))
	}
	return rep
}

// SurvivalProbability returns P(an N-node job of the given duration sees
// no node failure), assuming independent exponential per-node failures
// with the report's MTBF: exp(-N·T/MTBF).
func (m MTBFReport) SurvivalProbability(nodes int, duration time.Duration) float64 {
	if m.PerNodeMTBF <= 0 || nodes <= 0 || duration <= 0 {
		return 1
	}
	lambda := float64(nodes) * float64(duration) / float64(m.PerNodeMTBF)
	return math.Exp(-lambda)
}

// ExpectedFailures returns the expected node-failure count for an N-node
// job of the given duration.
func (m MTBFReport) ExpectedFailures(nodes int, duration time.Duration) float64 {
	if m.PerNodeMTBF <= 0 {
		return 0
	}
	return float64(nodes) * float64(duration) / float64(m.PerNodeMTBF)
}

// FailureProbabilityByNodes is the empirical counterpart: per node-count
// bucket, the fraction of (non-cancelled) jobs that died to the
// node-failure class. This is the paper's Fig 2(a) trend expressed as a
// probability instead of a mix.
type FailureProbabilityPoint struct {
	Label       string
	Jobs        int
	NodeClass   int
	Probability float64
}

// FailureProbabilityByNodes buckets jobs by node count.
func FailureProbabilityByNodes(recs []Record) []FailureProbabilityPoint {
	buckets := NodeBuckets()
	jobs := make([]int, len(buckets))
	events := make([]int, len(buckets))
	for _, r := range recs {
		if r.State == StateCancelled {
			continue
		}
		idx := sort.Search(len(buckets), func(i int) bool {
			return float64(r.Nodes) < buckets[i].Hi
		})
		if idx >= len(buckets) {
			idx = len(buckets) - 1
		}
		jobs[idx]++
		if r.IsNodeFailureClass() {
			events[idx]++
		}
	}
	out := make([]FailureProbabilityPoint, len(buckets))
	for i, b := range buckets {
		p := 0.0
		if jobs[i] > 0 {
			p = float64(events[i]) / float64(jobs[i])
		}
		out[i] = FailureProbabilityPoint{
			Label:       b.Label,
			Jobs:        jobs[i],
			NodeClass:   events[i],
			Probability: p,
		}
	}
	return out
}
