package slurmlog

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func genSmall(t *testing.T) ([]Record, GeneratorConfig) {
	t.Helper()
	cfg := FrontierDefaults(7)
	cfg.Jobs = 40000 // enough for tight marginals, fast in tests
	return Generate(cfg), cfg
}

func TestGeneratorMarginalsMatchTableI(t *testing.T) {
	recs, _ := genSmall(t)
	tab := ComputeTableI(recs)

	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.4f, want %.4f ± %.4f", name, got, want, tol)
		}
	}
	// Paper: 25.04% of jobs fail; of failures 52.50% JobFail,
	// 44.92% Timeout, 2.58% NodeFail.
	within("failure ratio", tab.FailureRatio(), 0.2504, 0.02)
	within("job-fail share", tab.ShareOfFailures(StateJobFail), 0.5250, 0.03)
	within("timeout share", tab.ShareOfFailures(StateTimeout), 0.4492, 0.03)
	within("node-fail share", tab.ShareOfFailures(StateNodeFail), 0.0258, 0.01)
	shares := tab.ShareOfFailures(StateJobFail) +
		tab.ShareOfFailures(StateTimeout) + tab.ShareOfFailures(StateNodeFail)
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("failure shares sum to %v", shares)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := FrontierDefaults(3)
	cfg.Jobs = 500
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestFig1OverallMeanNear75Minutes(t *testing.T) {
	recs, cfg := genSmall(t)
	points, overall := Fig1(recs, cfg.Start, cfg.Weeks)
	if len(points) != cfg.Weeks {
		t.Fatalf("weeks = %d", len(points))
	}
	// Paper: "on average, jobs run for over an hour before failing" with
	// an overall mean around 75 minutes.
	if overall < 55 || overall > 100 {
		t.Errorf("overall mean failed elapsed = %.1f min, want ~75", overall)
	}
	// Every week has failures ("job failures occur consistently every
	// week"), and some weeks average over two hours.
	over2h := 0
	for _, p := range points {
		if p.Failures == 0 {
			t.Errorf("week %d has no failures", p.Week)
		}
		if p.AllFailedMinutes > 120 {
			over2h++
		}
	}
	if over2h == 0 {
		t.Error("expected some weeks with >2h mean elapsed (Fig 1 peaks)")
	}
}

func TestFig2aNodeFailGrowsWithNodeCount(t *testing.T) {
	recs, _ := genSmall(t)
	buckets := Fig2a(recs)
	if len(buckets) != 5 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	first, last := buckets[0], buckets[len(buckets)-1]
	if last.Share(StateNodeFail) <= first.Share(StateNodeFail) {
		t.Errorf("NODE_FAIL share should grow with node count: %.3f → %.3f",
			first.Share(StateNodeFail), last.Share(StateNodeFail))
	}
	// Paper: 46.04% NODE_FAIL and 78.60% NODE_FAIL+TIMEOUT in the
	// whole-machine bucket.
	if got := last.Share(StateNodeFail); math.Abs(got-0.4604) > 0.12 {
		t.Errorf("top-bucket NODE_FAIL share = %.3f, want ≈ 0.46", got)
	}
	if got := last.NodeFailureClassShare(); math.Abs(got-0.7860) > 0.12 {
		t.Errorf("top-bucket NODE_FAIL+TIMEOUT share = %.3f, want ≈ 0.786", got)
	}
}

func TestFig2bElapsedIndependence(t *testing.T) {
	recs, _ := genSmall(t)
	buckets := Fig2b(recs)
	// Paper: "the duration of runtime does not significantly affect the
	// ratio of failure types" — JobFail share roughly flat across
	// elapsed buckets.
	var shares []float64
	for _, b := range buckets {
		if b.Total() > 100 {
			shares = append(shares, b.Share(StateJobFail))
		}
	}
	if len(shares) < 3 {
		t.Fatalf("too few populated buckets: %d", len(shares))
	}
	for i := 1; i < len(shares); i++ {
		if math.Abs(shares[i]-shares[0]) > 0.12 {
			t.Errorf("JobFail share varies too much with elapsed: %v", shares)
		}
	}
}

func TestSacctRoundTrip(t *testing.T) {
	cfg := FrontierDefaults(5)
	cfg.Jobs = 300
	recs := Generate(cfg)
	var buf bytes.Buffer
	if err := WriteSacct(&buf, recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSacct(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(recs) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(recs))
	}
	for i := range recs {
		if parsed[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, parsed[i], recs[i])
		}
	}
}

func TestParseSacctRealisticInput(t *testing.T) {
	in := strings.Join([]string{
		"JobID|State|NNodes|ElapsedRaw|Submit",
		"",
		"1234|COMPLETED|16|3600|2023-01-05T10:00:00",
		"1234.batch|COMPLETED|16|3600|2023-01-05T10:00:00", // step: skipped
		"1234.0|COMPLETED|16|3590|2023-01-05T10:00:00",     // step: skipped
		"1235|CANCELLED by 10234|1|60|2023-01-05T11:00:00",
		"1236|OUT_OF_MEMORY|4|120|2023-01-05T12:00:00",
		"1237|NODE_FAIL|512|9000|2023-01-06T01:02:03",
		"1238|RUNNING|8|100|2023-01-06T02:00:00",
	}, "\n")
	recs, err := ParseSacct(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	if recs[1].State != StateCancelled {
		t.Errorf("CANCELLED by → %s", recs[1].State)
	}
	if recs[2].State != StateJobFail {
		t.Errorf("OOM → %s, want job-fail class", recs[2].State)
	}
	if recs[3].State != StateNodeFail || recs[3].Nodes != 512 {
		t.Errorf("node-fail record: %+v", recs[3])
	}
	if recs[4].State != StateCancelled {
		t.Errorf("RUNNING should map to excluded class, got %s", recs[4].State)
	}
}

func TestParseSacctErrors(t *testing.T) {
	cases := []string{
		"1|FAILED|4|100",                           // missing field
		"x|FAILED|4|100|2023-01-05T10:00:00",       // bad job id
		"1|FAILED|-4|100|2023-01-05T10:00:00",      // bad nodes
		"1|FAILED|4|nope|2023-01-05T10:00:00",      // bad elapsed
		"1|FAILED|4|100|yesterday",                 // bad time
		"1|FAILED|4|100|2023-01-05T10:00:00|extra", // too many fields
	}
	for _, c := range cases {
		if _, err := ParseSacct(strings.NewReader(c)); err == nil {
			t.Errorf("line %q should fail to parse", c)
		}
	}
}

func TestTableIEdgeCases(t *testing.T) {
	var empty TableI
	if empty.FailureRatio() != 0 || empty.ShareOfFailures(StateJobFail) != 0 ||
		empty.ShareOfAll(StateTimeout) != 0 {
		t.Error("empty table should report zeros")
	}
	recs := []Record{
		{State: StateCancelled}, // excluded entirely
		{State: StateCompleted},
		{State: StateTimeout},
	}
	tab := ComputeTableI(recs)
	if tab.TotalJobs != 2 || tab.TotalFailures != 1 || tab.Timeout != 1 {
		t.Errorf("table = %+v", tab)
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{State: StateTimeout, Submit: time.Date(2023, 1, 16, 0, 0, 0, 0, time.UTC)}
	if !r.IsFailure() || !r.IsNodeFailureClass() {
		t.Error("timeout should be failure and node-failure class")
	}
	start := time.Date(2023, 1, 2, 0, 0, 0, 0, time.UTC)
	if w := r.Week(start); w != 2 {
		t.Errorf("week = %d, want 2", w)
	}
	if (Record{State: StateJobFail}).IsNodeFailureClass() {
		t.Error("job-fail is not node-failure class")
	}
	early := Record{Submit: start.Add(-time.Hour)}
	if early.Week(start) != 0 {
		t.Error("pre-start submit should clamp to week 0")
	}
}

func TestBucketHelpers(t *testing.T) {
	b := Bucket{JobFail: 5, Timeout: 3, NodeFail: 2}
	if b.Total() != 10 {
		t.Errorf("total = %d", b.Total())
	}
	if b.Share(StateJobFail) != 0.5 || b.Share(StateTimeout) != 0.3 || b.Share(StateNodeFail) != 0.2 {
		t.Error("shares wrong")
	}
	if b.NodeFailureClassShare() != 0.5 {
		t.Errorf("combined share = %v", b.NodeFailureClassShare())
	}
	var zero Bucket
	if zero.Share(StateJobFail) != 0 || zero.NodeFailureClassShare() != 0 {
		t.Error("empty bucket should report zeros")
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	cfg := FrontierDefaults(1)
	cfg.Jobs = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	cfg := FrontierDefaults(1)
	cfg.Jobs = 50000
	recs := Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeTableI(recs)
		Fig1(recs, cfg.Start, cfg.Weeks)
		Fig2a(recs)
		Fig2b(recs)
	}
}
