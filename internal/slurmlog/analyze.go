package slurmlog

import (
	"time"

	"repro/internal/stats"
)

// TableI holds the failure-count analysis of Table I.
type TableI struct {
	TotalJobs     int // cancelled and unknown states excluded
	TotalFailures int
	JobFail       int
	NodeFail      int
	Timeout       int
}

// FailureRatio returns failures over analyzed jobs (paper: 25.04%).
func (t TableI) FailureRatio() float64 {
	if t.TotalJobs == 0 {
		return 0
	}
	return float64(t.TotalFailures) / float64(t.TotalJobs)
}

// ShareOfFailures returns the class share among failures (paper:
// JobFail 52.50%, Timeout 44.92%, NodeFail 2.58%).
func (t TableI) ShareOfFailures(s State) float64 {
	if t.TotalFailures == 0 {
		return 0
	}
	var n int
	switch s {
	case StateJobFail:
		n = t.JobFail
	case StateNodeFail:
		n = t.NodeFail
	case StateTimeout:
		n = t.Timeout
	}
	return float64(n) / float64(t.TotalFailures)
}

// ShareOfAll returns the class share among all analyzed jobs.
func (t TableI) ShareOfAll(s State) float64 {
	if t.TotalJobs == 0 {
		return 0
	}
	return t.ShareOfFailures(s) * t.FailureRatio()
}

// ComputeTableI classifies records, excluding cancelled jobs.
func ComputeTableI(recs []Record) TableI {
	var t TableI
	for _, r := range recs {
		if r.State == StateCancelled {
			continue
		}
		t.TotalJobs++
		switch r.State {
		case StateJobFail:
			t.JobFail++
			t.TotalFailures++
		case StateNodeFail:
			t.NodeFail++
			t.TotalFailures++
		case StateTimeout:
			t.Timeout++
			t.TotalFailures++
		}
	}
	return t
}

// WeeklyElapsed is one week's Fig 1 data point: mean elapsed minutes of
// failed jobs per class.
type WeeklyElapsed struct {
	Week             int
	JobFailMinutes   float64
	TimeoutMinutes   float64
	NodeFailMinutes  float64
	AllFailedMinutes float64
	Failures         int
}

// Fig1 computes the weekly mean elapsed time of failed jobs over `weeks`
// weeks from `start`, plus the overall mean (the red dashed line).
func Fig1(recs []Record, start time.Time, weeks int) (points []WeeklyElapsed, overallMinutes float64) {
	type acc struct{ job, timeout, node, all stats.Running }
	byWeek := make([]acc, weeks)
	var overall stats.Running
	for _, r := range recs {
		if !r.IsFailure() {
			continue
		}
		w := r.Week(start)
		if w < 0 || w >= weeks {
			continue
		}
		mins := r.Elapsed.Minutes()
		overall.Add(mins)
		byWeek[w].all.Add(mins)
		switch r.State {
		case StateJobFail:
			byWeek[w].job.Add(mins)
		case StateTimeout:
			byWeek[w].timeout.Add(mins)
		case StateNodeFail:
			byWeek[w].node.Add(mins)
		}
	}
	points = make([]WeeklyElapsed, weeks)
	for w := range byWeek {
		points[w] = WeeklyElapsed{
			Week:             w,
			JobFailMinutes:   byWeek[w].job.Mean(),
			TimeoutMinutes:   byWeek[w].timeout.Mean(),
			NodeFailMinutes:  byWeek[w].node.Mean(),
			AllFailedMinutes: byWeek[w].all.Mean(),
			Failures:         byWeek[w].all.N(),
		}
	}
	return points, overall.Mean()
}

// Bucket is one histogram bucket of Fig 2 with its per-class failure mix.
type Bucket struct {
	Label    string
	Lo, Hi   float64 // [Lo, Hi) in the bucketed dimension
	JobFail  int
	Timeout  int
	NodeFail int
}

// Total returns the bucket's failure count.
func (b Bucket) Total() int { return b.JobFail + b.Timeout + b.NodeFail }

// Share returns the class fraction within the bucket.
func (b Bucket) Share(s State) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	switch s {
	case StateJobFail:
		return float64(b.JobFail) / float64(t)
	case StateTimeout:
		return float64(b.Timeout) / float64(t)
	case StateNodeFail:
		return float64(b.NodeFail) / float64(t)
	}
	return 0
}

// NodeFailureClassShare is NodeFail+Timeout within the bucket — the
// paper's combined metric (78.60% in the top node bucket).
func (b Bucket) NodeFailureClassShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Timeout+b.NodeFail) / float64(t)
}

// NodeBuckets is Fig 2(a)'s x-axis, the last bucket being the paper's
// 7,750–9,300 whole-machine range.
func NodeBuckets() []Bucket {
	mk := func(label string, lo, hi float64) Bucket { return Bucket{Label: label, Lo: lo, Hi: hi} }
	return []Bucket{
		mk("1-15", 1, 16),
		mk("16-155", 16, 156),
		mk("156-1550", 156, 1551),
		mk("1551-7749", 1551, 7750),
		mk("7750-9300", 7750, 9301),
	}
}

// ElapsedBuckets is Fig 2(b)'s x-axis (minutes).
func ElapsedBuckets() []Bucket {
	mk := func(label string, lo, hi float64) Bucket { return Bucket{Label: label, Lo: lo, Hi: hi} }
	return []Bucket{
		mk("0-10m", 0, 10),
		mk("10-30m", 10, 30),
		mk("30-60m", 30, 60),
		mk("1-2h", 60, 120),
		mk("2h+", 120, 1e18),
	}
}

// Fig2a buckets failures by node count.
func Fig2a(recs []Record) []Bucket {
	buckets := NodeBuckets()
	for _, r := range recs {
		if !r.IsFailure() {
			continue
		}
		fill(buckets, float64(r.Nodes), r.State)
	}
	return buckets
}

// Fig2b buckets failures by elapsed minutes.
func Fig2b(recs []Record) []Bucket {
	buckets := ElapsedBuckets()
	for _, r := range recs {
		if !r.IsFailure() {
			continue
		}
		fill(buckets, r.Elapsed.Minutes(), r.State)
	}
	return buckets
}

func fill(buckets []Bucket, x float64, s State) {
	for i := range buckets {
		if x >= buckets[i].Lo && x < buckets[i].Hi {
			switch s {
			case StateJobFail:
				buckets[i].JobFail++
			case StateTimeout:
				buckets[i].Timeout++
			case StateNodeFail:
				buckets[i].NodeFail++
			}
			return
		}
	}
}
