// Package slurmlog reproduces the paper's §III failure study: parsing
// sacct-style job accounting records and computing Table I (failure
// counts and ratios), Fig 1 (weekly mean elapsed time of failed jobs)
// and Fig 2 (failure-type distribution by node count and by elapsed
// time).
//
// The real input — six months of Frontier production logs — is not
// public, so the package also contains a synthetic generator calibrated
// to every marginal the paper reports. The analyzer is generator-
// agnostic: pointed at a genuine `sacct -P` dump it computes the same
// statistics.
package slurmlog

import (
	"time"
)

// State is a SLURM job terminal state (the subset the study uses).
type State string

// Job states. CANCELLED jobs are excluded from the failure analysis, as
// in the paper ("excluding those canceled by users, system
// administrators, or during maintenance").
const (
	StateCompleted State = "COMPLETED"
	StateJobFail   State = "FAILED"
	StateNodeFail  State = "NODE_FAIL"
	StateTimeout   State = "TIMEOUT"
	StateCancelled State = "CANCELLED"
)

// Record is one job accounting entry.
type Record struct {
	JobID   uint64
	State   State
	Nodes   int
	Elapsed time.Duration
	Submit  time.Time
}

// IsFailure reports whether the record counts as a failure in the study.
func (r Record) IsFailure() bool {
	switch r.State {
	case StateJobFail, StateNodeFail, StateTimeout:
		return true
	default:
		return false
	}
}

// IsNodeFailureClass reports whether the record falls into the paper's
// extended node-failure class: NODE_FAIL plus TIMEOUT ("we define node
// failures to include both Node Fail and Timeout cases").
func (r Record) IsNodeFailureClass() bool {
	return r.State == StateNodeFail || r.State == StateTimeout
}

// Week returns the 0-based week index of the record relative to start.
func (r Record) Week(start time.Time) int {
	if r.Submit.Before(start) {
		return 0
	}
	return int(r.Submit.Sub(start) / (7 * 24 * time.Hour))
}
