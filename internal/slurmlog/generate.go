package slurmlog

import (
	"math"
	"math/rand"
	"time"
)

// GeneratorConfig calibrates the synthetic Frontier log. Defaults (via
// FrontierDefaults) match every marginal Table I and §III report.
type GeneratorConfig struct {
	// Jobs is the total job count (paper: 181,933 over six months).
	Jobs int
	// Weeks of production covered (paper: 27).
	Weeks int
	// Start is the submit time of week 0.
	Start time.Time
	// Seed for reproducibility.
	Seed int64

	// Marginal rates over all jobs.
	JobFailRate  float64 // paper: 13.15%
	TimeoutRate  float64 // paper: 11.25%
	NodeFailRate float64 // paper: 0.65%
	// CancelledRate jobs are generated and must be excluded by the
	// analyzer (they exist in real sacct dumps).
	CancelledRate float64

	// MeanFailedElapsed is the overall mean elapsed time of failed jobs
	// (paper: ~75 minutes).
	MeanFailedElapsed time.Duration
	// MaxNodes is the machine size (Frontier: 9,472 nodes).
	MaxNodes int
}

// FrontierDefaults returns the calibration used throughout the repo.
func FrontierDefaults(seed int64) GeneratorConfig {
	return GeneratorConfig{
		Jobs:              181933,
		Weeks:             27,
		Start:             time.Date(2023, 1, 2, 0, 0, 0, 0, time.UTC),
		Seed:              seed,
		JobFailRate:       0.1315,
		TimeoutRate:       0.1125,
		NodeFailRate:      0.0065,
		CancelledRate:     0.05,
		MeanFailedElapsed: 75 * time.Minute,
		MaxNodes:          9472,
	}
}

// Generate produces a synthetic job log. Two structural behaviours are
// built in beyond the marginals:
//
//   - node-count dependence: the probability that a failure is a
//     NODE_FAIL (vs JOB_FAIL) rises with the job's node count,
//     reproducing Fig 2(a)'s trend (46% NODE_FAIL in the 7,750–9,300
//     bucket);
//   - elapsed-time independence: conditioned on failing, the failure
//     type mix does not depend on how long the job ran, reproducing
//     Fig 2(b)'s flat profile.
func Generate(cfg GeneratorConfig) []Record {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Record, 0, cfg.Jobs)
	week := 7 * 24 * time.Hour

	for i := 0; i < cfg.Jobs; i++ {
		r := Record{JobID: uint64(1_000_000 + i)}
		w := rng.Intn(cfg.Weeks)
		r.Submit = cfg.Start.Add(time.Duration(w)*week +
			time.Duration(rng.Int63n(int64(week)))).Truncate(time.Second)
		r.Nodes = sampleNodes(rng, cfg.MaxNodes)

		u := rng.Float64()
		failTotal := cfg.JobFailRate + cfg.TimeoutRate + cfg.NodeFailRate
		switch {
		case u < failTotal:
			r.State = sampleFailureType(rng, cfg, r.Nodes)
			r.Elapsed = sampleFailedElapsed(rng, cfg, w)
		case u < failTotal+cfg.CancelledRate:
			r.State = StateCancelled
			r.Elapsed = time.Duration(rng.ExpFloat64() * float64(30*time.Minute))
		default:
			r.State = StateCompleted
			r.Elapsed = time.Duration((0.5 + rng.ExpFloat64()) * float64(time.Hour))
		}
		r.Elapsed = r.Elapsed.Truncate(time.Second) // sacct reports whole seconds
		out = append(out, r)
	}
	return out
}

// sampleNodes draws a job size from a truncated log-uniform-ish
// distribution: most jobs are small, with a heavy tail of hero runs up
// to the full machine (as on real leadership systems).
func sampleNodes(rng *rand.Rand, maxNodes int) int {
	// log2(maxNodes) ≈ 13.2; draw an exponent with a u^2.5-skewed
	// distribution so whole-machine hero runs are rare (~1% of jobs), as
	// on a production system.
	exp := math.Pow(rng.Float64(), 2.5) * math.Log2(float64(maxNodes))
	n := int(math.Pow(2, exp))
	if n < 1 {
		n = 1
	}
	if n > maxNodes {
		n = maxNodes
	}
	return n
}

// sampleFailureType draws the failure class, conditioned on job size:
// hardware-driven NODE_FAIL (and network TIMEOUT) become relatively more
// likely as the node count grows.
func sampleFailureType(rng *rand.Rand, cfg GeneratorConfig, nodes int) State {
	total := cfg.JobFailRate + cfg.TimeoutRate + cfg.NodeFailRate
	pTimeout := cfg.TimeoutRate / total
	pNode := cfg.NodeFailRate / total

	// Size-dependent tilt: f ∈ [0,1] grows with log(node count); shift
	// probability mass from JOB_FAIL toward NODE_FAIL and TIMEOUT. The
	// logistic threshold keeps the tilt negligible below ~¾ machine but
	// near-saturated in the whole-machine bucket, so Fig 2(a) reaches the
	// paper's 46% NODE_FAIL / 78.6% NODE_FAIL+TIMEOUT while the global
	// marginals stay at Table I's values (small jobs dominate counts).
	f := math.Log2(float64(nodes)+1) / math.Log2(float64(cfg.MaxNodes)+1)
	boost := 1 / (1 + math.Exp(-(f-0.955)*150))
	pNodeBase := pNode * 0.6 // headroom for the boosted tail
	pNodeAdj := pNodeBase + (0.46-pNodeBase)*boost
	pTimeoutAdj := pTimeout + (0.33-pTimeout)*boost
	pJobAdj := 1 - pNodeAdj - pTimeoutAdj
	if pJobAdj < 0.05 {
		pJobAdj = 0.05
	}
	norm := pJobAdj + pTimeoutAdj + pNodeAdj
	u := rng.Float64() * norm
	switch {
	case u < pNodeAdj:
		return StateNodeFail
	case u < pNodeAdj+pTimeoutAdj:
		return StateTimeout
	default:
		return StateJobFail
	}
}

// sampleFailedElapsed draws the runtime of a failed job: lognormal
// around the configured mean, with week-to-week variation (some weeks
// average 2–3 hours, as Fig 1 shows).
func sampleFailedElapsed(rng *rand.Rand, cfg GeneratorConfig, week int) time.Duration {
	// Weekly multiplier with mean 1.0 and a tail above 2, deterministic
	// per week (Fig 1's two-to-three-hour peak weeks).
	wrng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(week)))
	u := wrng.Float64()
	weekly := 0.4 + 1.8*u*u // E[u^2]=1/3 → mean 1.0, max 2.2
	// Lognormal with sigma 0.8; scale so the overall mean matches.
	sigma := 0.8
	mu := math.Log(float64(cfg.MeanFailedElapsed)*weekly) - sigma*sigma/2
	d := time.Duration(math.Exp(mu + sigma*rng.NormFloat64()))
	if d < time.Minute {
		d = time.Minute
	}
	if d > 24*time.Hour {
		d = 24 * time.Hour
	}
	return d
}
