package slurmlog

import (
	"math"
	"testing"
	"time"
)

func TestEstimateMTBFHandBuilt(t *testing.T) {
	base := time.Date(2023, 1, 2, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		{State: StateCompleted, Nodes: 10, Elapsed: 10 * time.Hour, Submit: base},
		{State: StateNodeFail, Nodes: 50, Elapsed: 2 * time.Hour, Submit: base.Add(24 * time.Hour)},
		{State: StateTimeout, Nodes: 100, Elapsed: 1 * time.Hour, Submit: base.Add(48 * time.Hour)},
		{State: StateCancelled, Nodes: 999, Elapsed: 99 * time.Hour, Submit: base.Add(72 * time.Hour)},
	}
	rep := EstimateMTBF(recs)
	// Node-hours: 10*10 + 50*2 + 100*1 = 300 (cancelled excluded);
	// 2 node-failure-class events → per-node MTBF 150h.
	if rep.NodeFailureEvents != 2 {
		t.Errorf("events = %d", rep.NodeFailureEvents)
	}
	if math.Abs(rep.NodeHours-300) > 1e-9 {
		t.Errorf("node-hours = %v", rep.NodeHours)
	}
	if rep.PerNodeMTBF != 150*time.Hour {
		t.Errorf("MTBF = %v", rep.PerNodeMTBF)
	}
	if rep.Span != 72*time.Hour {
		t.Errorf("span = %v", rep.Span)
	}
}

func TestEstimateMTBFEmpty(t *testing.T) {
	rep := EstimateMTBF(nil)
	if rep.NodeFailureEvents != 0 || rep.PerNodeMTBF != 0 {
		t.Errorf("empty report: %+v", rep)
	}
	if rep.SurvivalProbability(100, time.Hour) != 1 {
		t.Error("no-data survival should be 1")
	}
}

func TestSurvivalProbabilityShape(t *testing.T) {
	rep := MTBFReport{PerNodeMTBF: 1000 * time.Hour}
	// exp(-N·T/MTBF): more nodes → lower survival; longer job → lower.
	p64 := rep.SurvivalProbability(64, 2*time.Hour)
	p1024 := rep.SurvivalProbability(1024, 2*time.Hour)
	if p1024 >= p64 {
		t.Errorf("survival must fall with node count: %v vs %v", p1024, p64)
	}
	pShort := rep.SurvivalProbability(64, time.Hour)
	if pShort <= p64 {
		t.Error("survival must fall with duration")
	}
	// Exact check: N=1000, T=1h → exp(-1).
	got := rep.SurvivalProbability(1000, time.Hour)
	if math.Abs(got-math.Exp(-1)) > 1e-9 {
		t.Errorf("survival = %v, want e^-1", got)
	}
	if rep.SurvivalProbability(0, time.Hour) != 1 {
		t.Error("zero nodes should survive")
	}
	if f := rep.ExpectedFailures(1000, time.Hour); math.Abs(f-1) > 1e-9 {
		t.Errorf("expected failures = %v, want 1", f)
	}
}

func TestMTBFOnSyntheticLog(t *testing.T) {
	cfg := FrontierDefaults(11)
	cfg.Jobs = 30000
	recs := Generate(cfg)
	rep := EstimateMTBF(recs)
	if rep.NodeFailureEvents == 0 || rep.PerNodeMTBF <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	// The headline implication of §III: a whole-machine-scale job has a
	// materially lower survival probability than a small one.
	pSmall := rep.SurvivalProbability(64, 2*time.Hour)
	pBig := rep.SurvivalProbability(9000, 2*time.Hour)
	if pBig >= pSmall {
		t.Errorf("survival: 9000 nodes %v should be < 64 nodes %v", pBig, pSmall)
	}
}

func TestFailureProbabilityByNodes(t *testing.T) {
	cfg := FrontierDefaults(13)
	cfg.Jobs = 40000
	recs := Generate(cfg)
	pts := FailureProbabilityByNodes(recs)
	if len(pts) != len(NodeBuckets()) {
		t.Fatalf("points = %d", len(pts))
	}
	totalJobs := 0
	for _, p := range pts {
		totalJobs += p.Jobs
		if p.Probability < 0 || p.Probability > 1 {
			t.Errorf("bucket %s probability %v", p.Label, p.Probability)
		}
	}
	if totalJobs == 0 {
		t.Fatal("no jobs bucketed")
	}
	// Probability of node-class death grows from the smallest to the
	// whole-machine bucket.
	first, last := pts[0], pts[len(pts)-1]
	if last.Jobs > 50 && last.Probability <= first.Probability {
		t.Errorf("node-failure probability should grow with scale: %v -> %v",
			first.Probability, last.Probability)
	}
}
