// Package ftpolicy is the adaptive fault-tolerance policy controller:
// the closed control loop that turns the repo's three static strategy
// design points (NoFT / FT w/ PFS / FT w/ NVMe) into a single runtime
// policy selected from observed telemetry, per epoch tick.
//
// The controller watches signals the stack already emits — failure and
// recovery declarations from each client's timeout detector, PFS
// fallback traffic and read latency from the clients, shed/hedge/
// timeout counters from loadctl — aggregates them per tick, and drives
// every attached ftcache.Switchable to the strategy the current regime
// favors:
//
//   - PFS contention (slow probe/EWMA latency with PFS traffic or
//     failed nodes outstanding) → FT w/ NVMe: pay one recache per lost
//     file instead of the congested PFS on every read.
//   - Failure burst / membership flapping (high fail+revive rate) with
//     a fast PFS → FT w/ PFS: redirect around flapping nodes without
//     churning the ring, wasting recache work, or polluting bounded
//     NVMe caches with transient copies.
//   - Sustained calm (no evidence for CalmTicks) → NoFT when allowed:
//     zero failure bookkeeping; the Switchable escape hatch converts a
//     surprise failure into an automatic switch, never an abort.
//   - Anything else → FT w/ NVMe, the paper's best static default.
//
// Decisions are made by a pure function of (state, Signals) with
// hysteresis watermarks and a tick-counted cooldown, so the controller
// never flaps and every run can be replayed deterministically from its
// exported decision log. Strategy switches are a single atomic pointer
// swap in the Switchable (see internal/ftcache/switchable.go): the
// read hot path consults the policy with one atomic load, and requests
// in flight across a switch observe exactly one strategy each.
package ftpolicy

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/telemetry"
)

// Config tunes the controller. Zero values select the defaults noted
// per field.
type Config struct {
	// Interval is the tick (epoch) period for Run; <= 0 selects 100ms.
	// Tests and benches may drive Tick directly instead.
	Interval time.Duration
	// CooldownTicks is the minimum number of ticks between committed
	// switches; <= 0 selects 3. Forced switches ignore it.
	CooldownTicks int
	// FailHigh is the per-tick failure+recovery event count at and
	// above which the fleet counts as bursting/flapping; <= 0 selects 2.
	FailHigh float64
	// FailLow is the hysteresis floor: once in the burst regime, the
	// controller stays there until events/tick drop below FailLow;
	// <= 0 selects 1.
	FailLow float64
	// BurstQuietTicks is how many consecutive sub-FailLow ticks are
	// required to leave the burst regime. Failure declarations arrive in
	// clusters with quiet ticks between them, so a single quiet tick is
	// not evidence the burst ended; <= 0 selects 3.
	BurstQuietTicks int
	// PFSLatencyHigh is the PFS read latency at and above which the PFS
	// counts as contended; <= 0 selects 1ms.
	PFSLatencyHigh time.Duration
	// PFSLatencyLow is the hysteresis floor for leaving the contention
	// regime; <= 0 selects PFSLatencyHigh / 4.
	PFSLatencyLow time.Duration
	// CalmTicks is the number of consecutive evidence-free ticks before
	// NoFT becomes eligible; <= 0 selects 10.
	CalmTicks int
	// AllowNoFT permits the calm→NoFT transition. Off by default: NoFT
	// buys nothing over FTNVMe in the healthy state (placement is
	// identical) and costs an escape switch on the next failure.
	AllowNoFT bool
	// LogSize bounds the retained decision log; <= 0 selects 64.
	LogSize int
	// Knobs, when non-nil, lets regime changes retune the load-control
	// surface alongside the strategy.
	Knobs *Knobs
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 3
	}
	if c.FailHigh <= 0 {
		c.FailHigh = 2
	}
	if c.FailLow <= 0 {
		c.FailLow = 1
	}
	if c.BurstQuietTicks <= 0 {
		c.BurstQuietTicks = 3
	}
	if c.PFSLatencyHigh <= 0 {
		c.PFSLatencyHigh = time.Millisecond
	}
	if c.PFSLatencyLow <= 0 {
		c.PFSLatencyLow = c.PFSLatencyHigh / 4
	}
	if c.CalmTicks <= 0 {
		c.CalmTicks = 10
	}
	if c.LogSize <= 0 {
		c.LogSize = 64
	}
	return c
}

// Knobs are the runtime load-control handles a regime change may
// retune. Any nil member is skipped.
type Knobs struct {
	// SetReplicas retunes hot-object fan-out width (0 = default).
	SetReplicas func(n int)
	// SetHedgeClamp retunes the hedged-read delay clamp.
	SetHedgeClamp func(min, max time.Duration)
	// SetRetryBudget retunes the conn-class retry count (-1 = default).
	SetRetryBudget func(n int)
	// SetAdmissionLimit retunes server admission (0 = default).
	SetAdmissionLimit func(n int)
}

// Signals is one tick's aggregated observation — everything decide is
// allowed to see. All rates are per-tick deltas summed across attached
// clients.
type Signals struct {
	Tick       int64   `json:"tick"`
	Failures   float64 `json:"failures"`    // detector declarations this tick
	Recoveries float64 `json:"recoveries"`  // revivals this tick
	Timeouts   float64 `json:"timeouts"`    // RPC timeouts this tick
	DirectPFS  float64 `json:"direct_pfs"`  // client-side PFS reads this tick
	ServedPFS  float64 `json:"served_pfs"`  // server-side PFS fallbacks this tick
	Sheds      float64 `json:"sheds"`       // admission sheds redirected this tick
	Hedges     float64 `json:"hedges"`      // hedge legs launched this tick
	FailedDown float64 `json:"failed_down"` // nodes currently declared failed
	PFSLatMs   float64 `json:"pfs_lat_ms"`  // PFS read latency (probe ∨ EWMA max)
}

// events is the combined fail+revive churn rate — the flap signal.
func (s Signals) events() float64 { return s.Failures + s.Recoveries }

// calm reports a tick with zero failure evidence of any kind.
func (s Signals) calm() bool {
	return s.Failures == 0 && s.Recoveries == 0 && s.Timeouts == 0 && s.FailedDown == 0
}

// Decision is one committed (or forced, or escape) policy transition.
// State is the controller's carried decision state just before the
// deciding tick ran, so each entry is a self-contained replay unit:
// decide(State, Signals) must reproduce (To, Reason).
type Decision struct {
	Seq     int64                `json:"seq"`
	Tick    int64                `json:"tick"`
	From    ftcache.StrategyKind `json:"from"`
	To      ftcache.StrategyKind `json:"to"`
	Reason  string               `json:"reason"`
	Forced  bool                 `json:"forced"`
	Signals Signals              `json:"signals"`
	State   ReplayState          `json:"state"`
}

// ReplayState is the exported form of the pure decision function's
// carried state.
type ReplayState struct {
	Active       ftcache.StrategyKind `json:"active"`
	LastSwitch   int64                `json:"last_switch"`
	CalmStreak   int                  `json:"calm_streak"`
	QuietStreak  int                  `json:"quiet_streak"`
	InBurst      bool                 `json:"in_burst"`
	InContention bool                 `json:"in_contention"`
}

func (st decideState) export() ReplayState {
	return ReplayState{
		Active: st.active, LastSwitch: st.lastSwitch,
		CalmStreak: st.calmStreak, QuietStreak: st.quietStreak,
		InBurst: st.inBurst, InContention: st.inContention,
	}
}

func (rs ReplayState) state() decideState {
	return decideState{
		active: rs.Active, lastSwitch: rs.LastSwitch,
		calmStreak: rs.CalmStreak, quietStreak: rs.QuietStreak,
		inBurst: rs.InBurst, inContention: rs.InContention,
	}
}

// decideState is the pure decision function's carried state. It holds
// no clocks and no pointers — replaying a decision log reconstructs it
// exactly.
type decideState struct {
	active       ftcache.StrategyKind
	lastSwitch   int64 // tick of the last committed switch
	calmStreak   int
	quietStreak  int  // consecutive sub-FailLow ticks while in burst
	inBurst      bool // hysteresis latch: entered burst regime
	inContention bool // hysteresis latch: entered contention regime
}

// decide is the pure policy: given the carried state and one tick's
// signals, return the target strategy and the reason, or ok=false to
// hold. Hysteresis: regimes are entered at the High watermark and left
// at the Low one; a cooldown of CooldownTicks must elapse between
// switches. decide mutates only st (the replayable state).
func decide(cfg Config, st *decideState, sig Signals) (to ftcache.StrategyKind, reason string, ok bool) {
	// Latch updates run every tick, switch or not — hysteresis is a
	// property of the observed regime, not of the committed strategy.
	if st.inBurst {
		if sig.events() < cfg.FailLow {
			st.quietStreak++
			if st.quietStreak >= cfg.BurstQuietTicks {
				st.inBurst = false
				st.quietStreak = 0
			}
		} else {
			st.quietStreak = 0
		}
	} else if sig.events() >= cfg.FailHigh {
		st.inBurst = true
		st.quietStreak = 0
	}
	high := float64(cfg.PFSLatencyHigh) / float64(time.Millisecond)
	low := float64(cfg.PFSLatencyLow) / float64(time.Millisecond)
	if st.inContention {
		if sig.PFSLatMs < low {
			st.inContention = false
		}
	} else if sig.PFSLatMs >= high {
		st.inContention = true
	}
	if sig.calm() {
		st.calmStreak++
	} else {
		st.calmStreak = 0
	}

	// Regime → strategy. Contention dominates burst: with the PFS slow,
	// per-read redirection is the one policy that cannot work, whatever
	// the failure rate is doing.
	target := ftcache.KindNVMe
	switch {
	case st.inContention:
		target, reason = ftcache.KindNVMe, "pfs-contention"
	case st.inBurst:
		target, reason = ftcache.KindPFS, "failure-burst"
	case cfg.AllowNoFT && st.calmStreak >= cfg.CalmTicks:
		target, reason = ftcache.KindNoFT, "calm"
	default:
		target, reason = ftcache.KindNVMe, "default"
	}
	if target == st.active {
		return "", "", false
	}
	if sig.Tick-st.lastSwitch < int64(cfg.CooldownTicks) {
		return "", "", false
	}
	return target, reason, true
}

// Controller drives one or more attached clients' Switchable routers
// from aggregated live signals.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	st      decideState
	tick    atomic.Int64
	clients []*attachedClient
	targets []*ftcache.Switchable
	prev    prevCounters
	log     []Decision
	seq     atomic.Int64

	// forced, when non-empty, pins the strategy (operator override).
	forced atomic.Pointer[ftcache.StrategyKind]

	// probe, when set, measures one PFS read per tick — the primary
	// contention detector (the EWMA only updates when clients happen to
	// read the PFS directly).
	probe func() (time.Duration, bool)

	// failures/recoveries accumulate detector callbacks between ticks.
	failures   atomic.Int64
	recoveries atomic.Int64

	// lastSignals is the latest tick's aggregate for gauges/debug.
	lastSignals atomic.Pointer[Signals]

	metrics *policyMetrics
}

type attachedClient struct {
	client *hvac.Client
	sw     *ftcache.Switchable
}

// prevCounters holds the previous tick's cumulative sums for delta
// computation.
type prevCounters struct {
	timeouts, directPFS, servedPFS, sheds, hedges int64
}

// New creates a controller. Attach clients with Attach, then either
// call Run for the real-time loop or Tick from a harness.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg.withDefaults()}
	c.st.active = ftcache.KindNVMe
	c.st.lastSwitch = -int64(c.cfg.CooldownTicks) // first switch is never cooldown-blocked
	c.metrics = newPolicyMetrics(c)
	return c
}

// SetPFSProbe installs the per-tick PFS latency probe.
func (c *Controller) SetPFSProbe(fn func() (time.Duration, bool)) { c.probe = fn }

// Attach registers a client and its Switchable router with the
// controller. The client's detector feeds the controller's failure/
// recovery rates; the Switchable both follows committed decisions and
// reports escape switches back into the decision log. The first
// attached Switchable's kind seeds the controller state.
func (c *Controller) Attach(cli *hvac.Client, sw *ftcache.Switchable) {
	c.mu.Lock()
	if len(c.targets) == 0 {
		c.st.active = sw.Kind()
	}
	c.clients = append(c.clients, &attachedClient{client: cli, sw: sw})
	c.targets = append(c.targets, sw)
	c.mu.Unlock()
	cli.Tracker().OnFailure(func(cluster.NodeID) { c.failures.Add(1) })
	cli.Tracker().OnRecovery(func(cluster.NodeID) { c.recoveries.Add(1) })
	sw.OnSwitch(func(from, to ftcache.StrategyKind, auto bool) {
		if !auto {
			return // committed by this controller; already logged
		}
		c.recordEscape(from, to)
	})
}

// recordEscape logs a Switchable-initiated escape (noft abort hatch)
// and re-syncs the controller state and sibling targets to it.
func (c *Controller) recordEscape(from, to ftcache.StrategyKind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.active = to
	c.st.lastSwitch = c.tick.Load()
	c.appendLocked(Decision{
		Seq:     c.seq.Add(1),
		Tick:    c.tick.Load(),
		From:    from,
		To:      to,
		Reason:  "noft-escape",
		Signals: c.snapshotSignals(),
	})
	for _, t := range c.targets {
		t.SwitchTo(to)
	}
	c.metrics.switches.Inc()
}

func (c *Controller) snapshotSignals() Signals {
	if s := c.lastSignals.Load(); s != nil {
		return *s
	}
	return Signals{}
}

// Force pins the strategy (operator override via ftcctl policy -force).
// kind "" or "auto" releases the pin and resumes adaptive control.
func (c *Controller) Force(kind ftcache.StrategyKind) error {
	if kind == "" || kind == "auto" {
		c.forced.Store(nil)
		return nil
	}
	switch kind {
	case ftcache.KindNoFT, ftcache.KindPFS, ftcache.KindNVMe:
	default:
		return fmt.Errorf("ftpolicy: unknown strategy %q", kind)
	}
	c.forced.Store(&kind)
	c.commit(kind, "forced", true)
	return nil
}

// Forced returns the pinned strategy ("" = auto).
func (c *Controller) Forced() ftcache.StrategyKind {
	if k := c.forced.Load(); k != nil {
		return *k
	}
	return ""
}

// Active returns the controller's view of the active strategy.
func (c *Controller) Active() ftcache.StrategyKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.active
}

// Decisions returns the most recent min(n, kept) decisions, newest
// last. n <= 0 returns the whole retained log.
func (c *Controller) Decisions(n int) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 || n > len(c.log) {
		n = len(c.log)
	}
	out := make([]Decision, n)
	copy(out, c.log[len(c.log)-n:])
	return out
}

// Switches returns the cumulative committed-switch count.
func (c *Controller) Switches() int64 { return c.seq.Load() }

// Tick runs one control epoch: gather signals, decide, commit. Exposed
// so harnesses and tests can drive the controller deterministically;
// Run calls it on a timer.
func (c *Controller) Tick() {
	tick := c.tick.Add(1)
	sig := c.gather(tick)
	c.lastSignals.Store(&sig)

	if c.forced.Load() != nil {
		return // pinned: observe, but never decide
	}
	c.mu.Lock()
	pre := c.st.export()
	to, reason, ok := decide(c.cfg, &c.st, sig)
	if !ok {
		c.mu.Unlock()
		return
	}
	from := c.st.active
	c.st.active = to
	c.st.lastSwitch = tick
	c.appendLocked(Decision{
		Seq: c.seq.Add(1), Tick: tick,
		From: from, To: to, Reason: reason, Signals: sig, State: pre,
	})
	targets := append([]*ftcache.Switchable(nil), c.targets...)
	c.mu.Unlock()

	for _, t := range targets {
		t.SwitchTo(to)
	}
	c.applyKnobs(reason)
	c.metrics.switches.Inc()
	telemetry.TraceEvent(telemetry.EventPolicySwitch, "", string(from)+"->"+string(to)+" ("+reason+")", c.seq.Load())
}

// commit applies an externally mandated strategy (Force) through the
// same bookkeeping as a decided switch.
func (c *Controller) commit(to ftcache.StrategyKind, reason string, forced bool) {
	c.mu.Lock()
	if c.st.active == to {
		c.mu.Unlock()
		return
	}
	from := c.st.active
	c.st.active = to
	c.st.lastSwitch = c.tick.Load()
	c.appendLocked(Decision{
		Seq: c.seq.Add(1), Tick: c.tick.Load(),
		From: from, To: to, Reason: reason, Forced: forced,
		Signals: c.snapshotSignals(),
	})
	targets := append([]*ftcache.Switchable(nil), c.targets...)
	c.mu.Unlock()
	for _, t := range targets {
		t.SwitchTo(to)
	}
	c.metrics.switches.Inc()
}

// applyKnobs retunes the load-control surface for the regime just
// entered. The profiles are deliberately coarse: the knobs are
// secondary to the strategy switch, and small profiles are easy to
// reason about in the decision log.
func (c *Controller) applyKnobs(reason string) {
	k := c.cfg.Knobs
	if k == nil {
		return
	}
	switch reason {
	case "pfs-contention":
		// Every avoidable PFS touch matters: widen hot-object fan-out so
		// cache copies absorb load, keep hedging patient (a slow PFS
		// inflates tails; hair-trigger hedges would double traffic), and
		// spend retries to stay off the PFS.
		apply(k.SetReplicas, 3)
		if k.SetHedgeClamp != nil {
			k.SetHedgeClamp(2*time.Millisecond, 100*time.Millisecond)
		}
		apply(k.SetRetryBudget, 2)
		apply(k.SetAdmissionLimit, 0)
	case "failure-burst":
		// Churn regime: conn-class failures are common and transient, so
		// a deeper retry budget rides them out; fan-out is wasted work
		// while membership shifts under it.
		apply(k.SetReplicas, 1)
		if k.SetHedgeClamp != nil {
			k.SetHedgeClamp(time.Millisecond, 100*time.Millisecond)
		}
		apply(k.SetRetryBudget, 3)
		apply(k.SetAdmissionLimit, 0)
	default: // "calm", "default", "forced"
		apply(k.SetReplicas, 0)
		if k.SetHedgeClamp != nil {
			k.SetHedgeClamp(250*time.Microsecond, 100*time.Millisecond)
		}
		apply(k.SetRetryBudget, -1)
		apply(k.SetAdmissionLimit, 0)
	}
}

func apply(fn func(int), n int) {
	if fn != nil {
		fn(n)
	}
}

// gather aggregates one tick's signals across attached clients.
func (c *Controller) gather(tick int64) Signals {
	var cur prevCounters
	var down float64
	var ewma time.Duration
	c.mu.Lock()
	clients := append([]*attachedClient(nil), c.clients...)
	c.mu.Unlock()
	seen := make(map[cluster.NodeID]bool)
	for _, ac := range clients {
		st := ac.client.Stats()
		cur.timeouts += st.Timeouts
		cur.directPFS += st.DirectPFS
		cur.servedPFS += st.ServedPFS
		cur.sheds += st.ShedRedirects
		cur.hedges += st.HedgedReads
		for _, n := range ac.client.Tracker().FailedNodes() {
			seen[n] = true
		}
		if l, ok := ac.client.PFSReadLatency(); ok && l > ewma {
			ewma = l
		}
	}
	down = float64(len(seen))

	lat := ewma
	if c.probe != nil {
		if d, ok := c.probe(); ok && d > lat {
			lat = d
		}
	}

	c.mu.Lock()
	prev := c.prev
	c.prev = cur
	c.mu.Unlock()

	return Signals{
		Tick:       tick,
		Failures:   float64(c.failures.Swap(0)),
		Recoveries: float64(c.recoveries.Swap(0)),
		Timeouts:   float64(cur.timeouts - prev.timeouts),
		DirectPFS:  float64(cur.directPFS - prev.directPFS),
		ServedPFS:  float64(cur.servedPFS - prev.servedPFS),
		Sheds:      float64(cur.sheds - prev.sheds),
		Hedges:     float64(cur.hedges - prev.hedges),
		FailedDown: down,
		PFSLatMs:   float64(lat) / float64(time.Millisecond),
	}
}

func (c *Controller) appendLocked(d Decision) {
	c.log = append(c.log, d)
	if over := len(c.log) - c.cfg.LogSize; over > 0 {
		c.log = append(c.log[:0], c.log[over:]...)
	}
}

// Run ticks the controller every Interval until ctx ends.
func (c *Controller) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Replay re-runs the pure decision function over a recorded log and
// verifies every decided transition reproduces exactly — the
// determinism check that makes a production decision log debuggable
// offline. Each entry carries its pre-decision state, so entries are
// verified independently; escape and forced entries are skipped (they
// originate outside decide).
func Replay(cfg Config, log []Decision) error {
	cfg = cfg.withDefaults()
	for i, want := range log {
		if want.Forced || want.Reason == "noft-escape" {
			continue
		}
		st := want.State.state()
		to, reason, ok := decide(cfg, &st, want.Signals)
		if !ok {
			return fmt.Errorf("ftpolicy: replay %d: no switch for signals of seq %d (want %s->%s %q)",
				i, want.Seq, want.From, want.To, want.Reason)
		}
		if to != want.To || reason != want.Reason {
			return fmt.Errorf("ftpolicy: replay %d: got %s (%q), want %s (%q)",
				i, to, reason, want.To, want.Reason)
		}
	}
	return nil
}
