package ftpolicy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ftcache"
)

func testCfg() Config {
	return Config{
		CooldownTicks:   2,
		FailHigh:        4,
		FailLow:         2,
		BurstQuietTicks: 1, // single-quiet-tick exit keeps scenarios short
		PFSLatencyHigh:  10 * time.Millisecond,
		CalmTicks:       5,
		AllowNoFT:       true,
	}.withDefaults()
}

// runDecide drives the pure function through a signal sequence and
// returns the committed transitions.
func runDecide(cfg Config, st *decideState, sigs []Signals) []string {
	var switches []string
	for _, sig := range sigs {
		if to, reason, ok := decide(cfg, st, sig); ok {
			st.active = to
			st.lastSwitch = sig.Tick
			switches = append(switches, string(to)+":"+reason)
		}
	}
	return switches
}

func TestDecideBurstEntersAndExits(t *testing.T) {
	cfg := testCfg()
	st := decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	sigs := []Signals{
		{Tick: 1, Failures: 5},                // ≥ FailHigh → burst
		{Tick: 2, Failures: 2, Recoveries: 1}, // 3 ≥ FailLow → stay
		{Tick: 3},                             // 0 < FailLow → exit
		{Tick: 4},
		{Tick: 5},
		{Tick: 6},
	}
	got := runDecide(cfg, &st, sigs)
	want := []string{"ftpfs:failure-burst", "ftnvme:default"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

func TestDecideContentionDominatesBurst(t *testing.T) {
	cfg := testCfg()
	st := decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	// Both regimes fire at once: contention must win (a slow PFS makes
	// per-read redirection the one unworkable policy).
	to, reason, ok := decide(cfg, &st, Signals{Tick: 1, Failures: 10, PFSLatMs: 50})
	if ok {
		t.Fatalf("unexpected switch to %s (%s): already on ftnvme", to, reason)
	}
	if !st.inBurst || !st.inContention {
		t.Fatalf("latches = burst:%v contention:%v, want both", st.inBurst, st.inContention)
	}
	// From ftpfs the same signals must pull to ftnvme with the
	// contention reason.
	st = decideState{active: ftcache.KindPFS, lastSwitch: -10, inBurst: true, inContention: true}
	to, reason, ok = decide(cfg, &st, Signals{Tick: 1, Failures: 10, PFSLatMs: 50})
	if !ok || to != ftcache.KindNVMe || reason != "pfs-contention" {
		t.Fatalf("got (%s,%s,%v), want (ftnvme,pfs-contention,true)", to, reason, ok)
	}
}

func TestDecideCalmReachesNoFT(t *testing.T) {
	cfg := testCfg()
	st := decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	var sigs []Signals
	for i := 1; i <= cfg.CalmTicks+1; i++ {
		sigs = append(sigs, Signals{Tick: int64(i)})
	}
	got := runDecide(cfg, &st, sigs)
	if len(got) != 1 || got[0] != "noft:calm" {
		t.Fatalf("transitions = %v, want [noft:calm]", got)
	}
	// Without AllowNoFT the same calm stretch holds ftnvme forever.
	cfg.AllowNoFT = false
	st = decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	if got := runDecide(cfg, &st, sigs); len(got) != 0 {
		t.Fatalf("AllowNoFT=false transitions = %v, want none", got)
	}
}

func TestDecideCooldownHolds(t *testing.T) {
	cfg := testCfg() // CooldownTicks=2
	st := decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	// Burst at tick 1 switches; contention at tick 2 is inside the
	// cooldown and must hold, then commit at tick 3.
	got := runDecide(cfg, &st, []Signals{
		{Tick: 1, Failures: 5},
		{Tick: 2, Failures: 5, PFSLatMs: 50},
		{Tick: 3, Failures: 5, PFSLatMs: 50},
	})
	want := []string{"ftpfs:failure-burst", "ftnvme:pfs-contention"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

// The hysteresis contract: a signal oscillating between the Low and
// High watermarks commits exactly one switch in, one out — never a
// flap per oscillation.
func TestDecideHysteresisNoFlap(t *testing.T) {
	cfg := testCfg() // FailHigh=4, FailLow=2
	st := decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	sigs := []Signals{{Tick: 1, Failures: 5}} // enter burst
	for i := 2; i <= 40; i++ {
		f := 3.0 // between Low and High: stays latched
		if i%2 == 0 {
			f = 2.0 // exactly FailLow: still ≥ Low, stays latched
		}
		sigs = append(sigs, Signals{Tick: int64(i), Failures: f})
	}
	for i := 41; i <= 43; i++ { // quiet (fewer than CalmTicks): exit burst only
		sigs = append(sigs, Signals{Tick: int64(i)})
	}
	got := runDecide(cfg, &st, sigs)
	want := []string{"ftpfs:failure-burst", "ftnvme:default"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("oscillating signal flapped: %v, want %v", got, want)
	}
}

// Burst exit needs BurstQuietTicks CONSECUTIVE quiet ticks: isolated
// quiet ticks between declaration clusters must not end the regime.
func TestDecideBurstQuietStreak(t *testing.T) {
	cfg := testCfg()
	cfg.BurstQuietTicks = 3
	st := decideState{active: ftcache.KindNVMe, lastSwitch: -10}
	sigs := []Signals{
		{Tick: 1, Failures: 5}, // enter burst → ftpfs
		{Tick: 2},              // quiet ×1
		{Tick: 3},              // quiet ×2
		{Tick: 4, Failures: 5}, // cluster resets the streak
		{Tick: 5},              // quiet ×1
		{Tick: 6},              // quiet ×2
		{Tick: 7},              // quiet ×3 → exit → ftnvme
	}
	got := runDecide(cfg, &st, sigs)
	want := []string{"ftpfs:failure-burst", "ftnvme:default"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	if st.inBurst || st.quietStreak != 0 {
		t.Fatalf("post-exit state: inBurst=%v quietStreak=%d", st.inBurst, st.quietStreak)
	}
}

// Controller-level hysteresis: drive Tick with failure-rate oscillation
// injected through the detector-callback accumulators and assert the
// attached Switchable commits exactly the two regime switches.
func TestControllerOscillationNoFlap(t *testing.T) {
	nodes := []cluster.NodeID{"n0", "n1", "n2", "n3"}
	sw := ftcache.NewSwitchable(nodes, 100, ftcache.KindNVMe)
	c := New(testCfg())
	c.targets = []*ftcache.Switchable{sw}

	c.failures.Add(5)
	c.Tick() // enter burst → ftpfs
	for i := 0; i < 40; i++ {
		c.failures.Add(2 + int64(i%2)) // oscillate in [FailLow, FailHigh)
		c.Tick()
	}
	if sw.Kind() != ftcache.KindPFS {
		t.Fatalf("active after oscillation = %s, want ftpfs", sw.Kind())
	}
	if got := sw.Switches(); got != 1 {
		t.Fatalf("switches during oscillation = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		c.Tick() // quiet ticks: exit burst, then calm → noft
	}
	if got := c.Switches(); got != 3 {
		for _, d := range c.Decisions(0) {
			t.Logf("decision: %+v", d)
		}
		t.Fatalf("total committed switches = %d, want 3 (in, out, calm)", got)
	}
	if err := Replay(c.cfg, c.Decisions(0)); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestControllerForce(t *testing.T) {
	nodes := []cluster.NodeID{"n0", "n1"}
	sw := ftcache.NewSwitchable(nodes, 100, ftcache.KindNVMe)
	c := New(testCfg())
	c.targets = []*ftcache.Switchable{sw}

	if err := c.Force("bogus"); err == nil {
		t.Fatal("Force(bogus) succeeded")
	}
	if err := c.Force(ftcache.KindPFS); err != nil {
		t.Fatal(err)
	}
	if sw.Kind() != ftcache.KindPFS || c.Forced() != ftcache.KindPFS {
		t.Fatalf("after force: sw=%s forced=%q", sw.Kind(), c.Forced())
	}
	// Pinned: a burst signal must not move the strategy.
	c.failures.Add(50)
	c.Tick()
	if sw.Kind() != ftcache.KindPFS {
		t.Fatalf("forced pin did not hold: %s", sw.Kind())
	}
	ds := c.Decisions(1)
	if len(ds) != 1 || !ds[0].Forced || ds[0].Reason != "forced" {
		t.Fatalf("forced decision not logged: %+v", ds)
	}
	if err := c.Force("auto"); err != nil {
		t.Fatal(err)
	}
	if c.Forced() != "" {
		t.Fatalf("auto did not unpin: %q", c.Forced())
	}
	if err := Replay(c.cfg, c.Decisions(0)); err != nil {
		t.Fatalf("replay with forced entries: %v", err)
	}
}

// Replay must reject a log whose recorded outcome does not follow from
// its recorded signals — the tamper/decode check.
func TestReplayDetectsCorruption(t *testing.T) {
	c := New(testCfg())
	c.failures.Add(5)
	c.Tick()
	log := c.Decisions(0)
	if len(log) != 1 {
		t.Fatalf("decisions = %d, want 1", len(log))
	}
	if err := Replay(c.cfg, log); err != nil {
		t.Fatalf("clean replay: %v", err)
	}
	bad := append([]Decision(nil), log...)
	bad[0].To = ftcache.KindNoFT
	if err := Replay(c.cfg, bad); err == nil {
		t.Fatal("replay accepted a corrupted transition")
	}
	bad = append([]Decision(nil), log...)
	bad[0].Signals.Failures = 0
	if err := Replay(c.cfg, bad); err == nil {
		t.Fatal("replay accepted corrupted signals")
	}
}

// Knob profiles must follow the regime: contention widens fan-out,
// burst deepens retries, recovery restores defaults.
func TestControllerKnobProfiles(t *testing.T) {
	var (
		mu       sync.Mutex
		replicas []int
		retries  []int
	)
	cfg := testCfg()
	cfg.Knobs = &Knobs{
		SetReplicas:    func(n int) { mu.Lock(); replicas = append(replicas, n); mu.Unlock() },
		SetRetryBudget: func(n int) { mu.Lock(); retries = append(retries, n); mu.Unlock() },
	}
	c := New(cfg)
	c.failures.Add(5)
	c.Tick() // burst → ftpfs: replicas 1, retries 3
	for i := 0; i < 3; i++ {
		c.Tick()
	}
	// Past cooldown and burst exited → default: replicas 0, retries -1.
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(replicas) != "[1 0]" || fmt.Sprint(retries) != "[3 -1]" {
		t.Fatalf("knob history: replicas=%v retries=%v", replicas, retries)
	}
}

// Concurrent Tick/Force/Decisions under -race: the controller's locks
// and atomics must keep the bookkeeping coherent.
func TestControllerConcurrency(t *testing.T) {
	nodes := []cluster.NodeID{"n0", "n1", "n2"}
	sw := ftcache.NewSwitchable(nodes, 100, ftcache.KindNVMe)
	c := New(testCfg())
	c.targets = []*ftcache.Switchable{sw}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g {
				case 0:
					c.failures.Add(int64(i % 7))
					c.Tick()
				case 1:
					if i%3 == 0 {
						_ = c.Force(ftcache.KindPFS)
					} else {
						_ = c.Force("auto")
					}
				default:
					_ = c.Decisions(8)
					_ = c.Active()
					_ = sw.Route("/data/x")
				}
			}
		}(g)
	}
	wg.Wait()
	if err := Replay(c.cfg, c.Decisions(0)); err != nil {
		t.Fatalf("replay after concurrent run: %v", err)
	}
}
