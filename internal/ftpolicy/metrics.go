package ftpolicy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ftcache"
	"repro/internal/telemetry"
)

// current is the controller the process-global metric callbacks read.
// Registry func-metrics register once per series name (first wins), so
// the callbacks indirect through this pointer and the newest controller
// takes over the series — the same latest-wins contract the debug
// sections use. Tests that build many controllers thus never leak
// stale gauges.
var current atomic.Pointer[Controller]

// policyMetrics bundles the controller's registry handles.
type policyMetrics struct {
	switches *telemetry.Counter
}

var (
	metricsOnce sync.Once
	metricsInst *policyMetrics
)

// newPolicyMetrics registers (once) the policy metric series and debug
// section, points them at c, and returns the shared handles:
//
//   - ftc_policy_switches_total — committed strategy switches
//   - ftc_policy_active{strategy=...} — 1 on the active strategy, 0 off
//   - ftc_policy_forced — 1 while an operator override pins the policy
//   - ftc_policy_signal_*— the last tick's aggregated signal snapshot
//   - /debug/ftcache "policy" section — active strategy, live signals,
//     and the last decisions with their triggering reasons
func newPolicyMetrics(c *Controller) *policyMetrics {
	current.Store(c)
	metricsOnce.Do(func() {
		r := telemetry.Default()
		metricsInst = &policyMetrics{
			switches: r.Counter("ftc_policy_switches_total"),
		}
		for _, k := range []ftcache.StrategyKind{ftcache.KindNoFT, ftcache.KindPFS, ftcache.KindNVMe} {
			kind := k
			r.GaugeFunc("ftc_policy_active", func() int64 {
				if cc := current.Load(); cc != nil && cc.Active() == kind {
					return 1
				}
				return 0
			}, "strategy", string(kind))
		}
		r.GaugeFunc("ftc_policy_forced", func() int64 {
			if cc := current.Load(); cc != nil && cc.Forced() != "" {
				return 1
			}
			return 0
		})
		signal := func(name string, pick func(Signals) int64) {
			r.GaugeFunc(name, func() int64 {
				if cc := current.Load(); cc != nil {
					return pick(cc.snapshotSignals())
				}
				return 0
			})
		}
		signal("ftc_policy_signal_failures", func(s Signals) int64 { return int64(s.Failures) })
		signal("ftc_policy_signal_recoveries", func(s Signals) int64 { return int64(s.Recoveries) })
		signal("ftc_policy_signal_timeouts", func(s Signals) int64 { return int64(s.Timeouts) })
		signal("ftc_policy_signal_direct_pfs", func(s Signals) int64 { return int64(s.DirectPFS) })
		signal("ftc_policy_signal_served_pfs", func(s Signals) int64 { return int64(s.ServedPFS) })
		signal("ftc_policy_signal_failed_down", func(s Signals) int64 { return int64(s.FailedDown) })
		signal("ftc_policy_signal_pfs_latency_us", func(s Signals) int64 { return int64(s.PFSLatMs * 1000) })
		r.RegisterDebug("policy", func() any {
			cc := current.Load()
			if cc == nil {
				return nil
			}
			return cc.DebugSnapshot(16)
		})
		r.RegisterControl("policy-force", func(arg string) error {
			cc := current.Load()
			if cc == nil {
				return fmt.Errorf("ftpolicy: no controller attached")
			}
			return cc.Force(ftcache.StrategyKind(arg))
		})
	})
	return metricsInst
}

// DebugSnapshot is the "policy" /debug/ftcache section: the active
// strategy, any operator pin, the live signal aggregate, and the last
// n decisions with their reasons.
func (c *Controller) DebugSnapshot(n int) map[string]any {
	decisions := c.Decisions(n)
	rows := make([]map[string]any, len(decisions))
	for i, d := range decisions {
		rows[i] = map[string]any{
			"seq":    d.Seq,
			"tick":   d.Tick,
			"from":   string(d.From),
			"to":     string(d.To),
			"reason": d.Reason,
			"forced": d.Forced,
		}
	}
	return map[string]any{
		"active":    string(c.Active()),
		"forced":    string(c.Forced()),
		"switches":  c.Switches(),
		"tick":      c.tick.Load(),
		"signals":   c.snapshotSignals(),
		"decisions": rows,
	}
}
