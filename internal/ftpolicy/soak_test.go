package ftpolicy_test

// The adaptive-policy soak: a live in-process cluster whose clients
// route through Switchable routers under ftpolicy control, driven
// through both stock seeded phase-shift schedules (calm → failure
// burst → heal → PFS contention, and its contention-first mirror).
// On top of the standard chaos-soak invariants —
// correct bytes, no stuck reads, post-heal convergence — the adaptive
// run must be hitless across every live strategy switch:
//
//   - no read ever returns hvac.ErrAborted (the Switchable escape
//     hatch converts NoFT aborts into automatic switches), and
//   - the exported decision log replays deterministically through the
//     pure decision function.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ftcache"
	"repro/internal/ftpolicy"
	"repro/internal/hvac"
	"repro/internal/rpc"
	"repro/internal/testutil"
	"repro/internal/workload"
)

func TestAdaptivePhasedSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	unit := 500 * time.Millisecond
	pfsDelay := 2 * time.Millisecond
	// Both stock regime orderings, each on its own seed, so the
	// controller walks calm→burst→contention and contention→burst under
	// -race every run. FTC_CHAOS_SEED replays a failure on both.
	cases := []struct {
		name   string
		seed   int64
		phases []chaos.Phase
	}{
		{"calm-burst-heal-contention", 11, chaos.PhasesCalmBurstHealContention(unit, pfsDelay)},
		{"contention-first", 12, chaos.PhasesContentionFirst(unit, pfsDelay)},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	if s := os.Getenv("FTC_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FTC_CHAOS_SEED=%q: %v", s, err)
		}
		for i := range cases {
			cases[i].seed = v
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/seed=%d", tc.name, tc.seed), func(t *testing.T) {
			runAdaptiveSoak(t, tc.seed, tc.phases)
		})
	}
}

func runAdaptiveSoak(t *testing.T, seed int64, phases []chaos.Phase) {
	const (
		nodes      = 16
		nClients   = 4
		rpcTimeout = 60 * time.Millisecond
		readBudget = 15 * time.Second
	)
	t.Logf("adaptive soak seed=%d (replay: FTC_CHAOS_SEED=%d)", seed, seed)

	netctl := chaos.New(rpc.NewInprocNetwork(), chaos.Config{Seed: seed, DialTimeout: 50 * time.Millisecond})
	cl, err := core.NewCluster(core.ClusterConfig{
		Nodes:        nodes,
		Strategy:     ftcache.KindAdaptive,
		RPCTimeout:   rpcTimeout,
		TimeoutLimit: 2,
		Network:      netctl.Network("boot"),
		Retry:        &rpc.RetryPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ds := workload.Dataset{Name: "adapt", Prefix: "adapt/train", NumFiles: 200, FileBytes: 512}
	if _, err := cl.Stage(ds); err != nil {
		t.Fatal(err)
	}
	if err := cl.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	paths := ds.AllPaths()
	defer cl.PFS().SetReadDelay(0)

	policy := ftpolicy.New(ftpolicy.Config{
		Interval:       20 * time.Millisecond,
		CooldownTicks:  3,
		FailHigh:       2,
		CalmTicks:      8,
		AllowNoFT:      true, // exercise the escape hatch under the burst
		PFSLatencyHigh: time.Millisecond,
	})
	policy.SetPFSProbe(cl.PolicyProbe(paths[0]))

	type soakClient struct {
		cli *hvac.Client
		sw  *ftcache.Switchable
		hb  *cluster.Heartbeat
	}
	clients := make([]*soakClient, nClients)
	for i := range clients {
		cli, sw, err := cl.NewAdaptiveClientNet(netctl.Network(fmt.Sprintf("cli-%d", i)), policy)
		if err != nil {
			t.Fatal(err)
		}
		sc := &soakClient{cli: cli, sw: sw}
		sc.hb = cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
			Interval:        15 * time.Millisecond,
			Timeout:         rpcTimeout,
			ReviveThreshold: 2,
			OnRevive: func(n cluster.NodeID) {
				go cli.Rejoin(context.Background(), n,
					hvac.RejoinOptions{Probes: 1, Keys: paths})
			},
		})
		sc.hb.Start()
		clients[i] = sc
		defer cli.Close()
		defer sc.hb.Stop()
	}

	policyCtx, policyCancel := context.WithCancel(context.Background())
	policyDone := make(chan struct{})
	go func() {
		defer close(policyDone)
		policy.Run(policyCtx)
	}()
	defer func() {
		policyCancel()
		<-policyDone
	}()

	nodeNames := make([]string, 0, nodes)
	for _, n := range cl.Nodes() {
		nodeNames = append(nodeNames, string(n))
	}
	plan := chaos.GeneratePhasedPlan(seed, nodeNames, phases)
	t.Logf("phases: %s", chaos.PhaseSummary(phases))
	t.Logf("plan: %s", plan.Summary())

	var (
		reads      atomic.Int64
		transient  atomic.Int64
		wrongBytes atomic.Int64
		stuck      atomic.Int64
		aborted    atomic.Int64
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for ci, sc := range clients {
		for g := 0; g < 2; g++ {
			readers.Add(1)
			cli := sc.cli
			rng := rand.New(rand.NewSource(seed ^ int64(ci*7+g+1)))
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := rng.Intn(ds.NumFiles)
					want := ds.SampleContent(i)
					deadline := time.Now().Add(readBudget)
					for {
						ctx, cancel := context.WithDeadline(context.Background(), deadline)
						data, err := cli.Read(ctx, paths[i])
						cancel()
						if err == nil {
							reads.Add(1)
							if !bytes.Equal(data, want) {
								wrongBytes.Add(1)
								t.Errorf("seed=%d: wrong bytes for %s (%d vs %d)", seed, paths[i], len(data), len(want))
							}
							break
						}
						if err == hvac.ErrAborted || err == hvac.ErrNotFound {
							// The adaptive contract: jobs never die of NoFT.
							aborted.Add(1)
							t.Errorf("seed=%d: read %s: %v", seed, paths[i], err)
							break
						}
						if time.Now().After(deadline) {
							stuck.Add(1)
							t.Errorf("seed=%d: read %s stuck: no success within %v (last err: %v)",
								seed, paths[i], readBudget, err)
							break
						}
						transient.Add(1)
					}
				}
			}()
		}
	}

	planCtx, planCancel := context.WithTimeout(context.Background(), plan.Horizon+5*time.Second)
	plan.Execute(planCtx, netctl, chaos.Actions{
		Crash: func(node string, kill bool) {
			mode := core.FailUnresponsive
			if kill {
				mode = core.FailKill
			}
			if err := cl.Fail(core.NodeID(node), mode); err != nil {
				t.Errorf("crash %s: %v", node, err)
			}
		},
		Restart: func(node string) {
			if err := cl.Revive(core.NodeID(node)); err != nil {
				t.Errorf("restart %s: %v", node, err)
			}
		},
		SetPFSDelay: cl.PFS().SetReadDelay,
	})
	planCancel()
	netctl.HealAll()

	// Convergence: every client's live ring and tracker back to full
	// membership.
	converged := func() bool {
		for _, sc := range clients {
			ring := sc.sw.Member(ftcache.KindNVMe).(*ftcache.RingRecache).Ring()
			if ring.Len() != nodes || len(sc.cli.Tracker().Alive()) != nodes {
				return false
			}
		}
		return true
	}
	healDeadline := time.Now().Add(20 * time.Second)
	for !converged() {
		if time.Now().After(healDeadline) {
			for i, sc := range clients {
				ring := sc.sw.Member(ftcache.KindNVMe).(*ftcache.RingRecache).Ring()
				t.Errorf("seed=%d: client %d not converged: ring=%d alive=%d",
					seed, i, ring.Len(), len(sc.cli.Tracker().Alive()))
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	readers.Wait()
	// Let the controller observe the healed, quiet fleet and release
	// its burst latch before shutdown — the exit commit is part of the
	// asserted regime walk, and on a fast (non-race) run the plan can
	// finish before the quiet streak elapses.
	settleDeadline := time.Now().Add(5 * time.Second)
	for policy.Active() == ftcache.KindPFS && time.Now().Before(settleDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	policyCancel()
	<-policyDone

	// Post-heal verification epoch.
	for i, sc := range clients {
		for j := 0; j < ds.NumFiles; j++ {
			if err := core.VerifyRead(context.Background(), sc.cli, ds, j); err != nil {
				t.Fatalf("seed=%d: post-heal verify client=%d file=%d: %v", seed, i, j, err)
			}
		}
	}

	decisions := policy.Decisions(0)
	for _, d := range decisions {
		t.Logf("seed=%d: decision seq=%d tick=%d %s->%s (%s) sig={ev=%.0f down=%.0f pfs=%.2fms}",
			seed, d.Seq, d.Tick, d.From, d.To, d.Reason,
			d.Signals.Failures+d.Signals.Recoveries, d.Signals.FailedDown, d.Signals.PFSLatMs)
	}
	if policy.Switches() < 2 {
		t.Errorf("seed=%d: controller committed %d switches across the phase walk, want >= 2", seed, policy.Switches())
	}
	if err := ftpolicy.Replay(ftpolicy.Config{
		CooldownTicks: 3, FailHigh: 2, CalmTicks: 8, AllowNoFT: true,
		PFSLatencyHigh: time.Millisecond,
	}, decisions); err != nil {
		t.Errorf("seed=%d: decision log does not replay: %v", seed, err)
	}
	t.Logf("seed=%d: reads=%d transient-retries=%d switches=%d faults[%s]",
		seed, reads.Load(), transient.Load(), policy.Switches(), netctl.FormatFaults())
	if reads.Load() == 0 {
		t.Error("soak completed zero reads")
	}
	if wrongBytes.Load() != 0 || stuck.Load() != 0 || aborted.Load() != 0 {
		t.Errorf("invariant violations: wrong-bytes=%d stuck=%d aborted=%d",
			wrongBytes.Load(), stuck.Load(), aborted.Load())
	}
}
