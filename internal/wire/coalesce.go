package wire

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// ErrWriterBroken reports that a previous flush left the stream in an
// undefined state (a partial frame reached the peer), so no further
// frames may be written on this connection.
var ErrWriterBroken = errors.New("wire: writer broken by partial flush")

// FlushObserver receives one callback per flush with the number of
// frames and bytes the single Write carried. Implementations must be
// goroutine-safe and cheap (the callback runs on the flush path).
type FlushObserver func(frames int, bytes int)

// deadlineWriter is the optional conn capability the coalescing writer
// uses to honor per-frame write deadlines (every net.Conn has it).
type deadlineWriter interface {
	SetWriteDeadline(t time.Time) error
}

// flushGen is one flush generation: the set of frames encoded into a
// shared buffer that will leave in a single Write. Every enqueuer of the
// generation waits on done and reads err afterwards.
type flushGen struct {
	done   chan struct{}
	err    error
	frames int
}

// extSeg is one external payload segment spliced into a flush at byte
// offset off of the generation's encode buffer: the zero-copy tail of a
// frame written with WriteFrameExt. release fires once the flush
// attempt carrying the segment has completed (or the generation is
// abandoned), ending the caller's lease on b.
type extSeg struct {
	off     int
	b       []byte
	release func()
}

// CoalescedWriter turns per-frame writes from many goroutines into
// group-committed flushes: each caller encodes its frame into a shared
// pending buffer, and the first caller to arrive while no flush is in
// progress becomes the flusher — it swaps the buffer out and issues one
// Write for every frame that accumulated, including frames enqueued by
// callers that arrived while a previous flush was on the wire. Under
// concurrency the syscall count amortizes across the batch (writev-style
// without the iovec plumbing); a lone caller degenerates to exactly the
// old one-Write-per-frame behavior with one extra mutex pair.
//
// WriteFrame returns only after the frame's bytes have been handed to
// the underlying Write, preserving the send-before-wait ordering the
// RPC layers rely on.
type CoalescedWriter struct {
	w  io.Writer
	dw deadlineWriter // nil when w cannot set write deadlines
	ob FlushObserver  // nil = no instrumentation

	mu       sync.Mutex
	pend     *Buf      // frames encoded and not yet flushed (nil = none)
	segs     []extSeg  // external segments spliced into pend's frames
	gen      *flushGen // waiters for the frames in pend
	earliest time.Time // earliest nonzero deadline among pending frames
	flushing bool      // a flusher is active (owns the fields below)
	broken   bool      // a partial flush corrupted the stream

	// armed is owned by whichever caller holds flushing — only one
	// flusher exists at a time, so no lock is needed around it.
	armed bool // the conn currently has a write deadline set
}

// NewCoalescedWriter wraps w. The observer may be nil.
func NewCoalescedWriter(w io.Writer, ob FlushObserver) *CoalescedWriter {
	cw := &CoalescedWriter{w: w, ob: ob}
	if dw, ok := w.(deadlineWriter); ok {
		cw.dw = dw
	}
	return cw
}

// WriteFrame encodes f and returns once a flush carrying it completed.
func (cw *CoalescedWriter) WriteFrame(f *Frame) error {
	return cw.writeFrame(f, nil, nil, time.Time{})
}

// WriteFrameDeadline is WriteFrame with a write deadline: the flush
// carrying this frame runs under the earliest deadline of its batch
// (zero means none). A deadline expiry fails every frame in the batch —
// each caller sees the timeout and classifies it independently, exactly
// as if its own solo write had timed out.
func (cw *CoalescedWriter) WriteFrameDeadline(f *Frame, dl time.Time) error {
	return cw.writeFrame(f, nil, nil, dl)
}

// WriteFrameExt is WriteFrameDeadline for a frame whose payload tail
// lives outside the shared encode buffer: the frame's declared length
// covers f.Payload plus ext, f.Payload (the head) is copied into the
// pending buffer, and ext is spliced in at flush time without copying —
// the zero-copy path a leased RAM-tier read rides.
//
// release (which may be nil) is invoked exactly once, after the flush
// attempt carrying the frame finishes — success, error, or abandonment
// on an already-broken writer — ending the caller's lease on ext. It
// runs on the flusher's goroutine and must be cheap, non-blocking, and
// must not call back into this writer.
func (cw *CoalescedWriter) WriteFrameExt(f *Frame, ext []byte, release func(), dl time.Time) error {
	return cw.writeFrame(f, ext, release, dl)
}

// writeFrame encodes f (plus an optional external segment) into the
// pending generation and drives or awaits its flush.
func (cw *CoalescedWriter) writeFrame(f *Frame, ext []byte, release func(), dl time.Time) error {
	cw.mu.Lock()
	if cw.broken {
		cw.mu.Unlock()
		if release != nil {
			release()
		}
		return ErrWriterBroken
	}
	if cw.pend == nil {
		cw.pend = acquireBuf(0)
		cw.gen = &flushGen{done: make(chan struct{})}
	}
	if ext == nil && release == nil {
		cw.pend.b = AppendFrame(cw.pend.b, f)
	} else {
		cw.pend.b = appendFrameHead(cw.pend.b, f, len(ext))
		cw.segs = append(cw.segs, extSeg{off: len(cw.pend.b), b: ext, release: release})
	}
	cw.gen.frames++
	if !dl.IsZero() && (cw.earliest.IsZero() || dl.Before(cw.earliest)) {
		cw.earliest = dl
	}
	gen := cw.gen
	if cw.flushing {
		// A flusher is on the wire; it will pick this generation up in
		// its drain loop (or a later caller will become the flusher).
		cw.mu.Unlock()
		<-gen.done
		return gen.err
	}
	cw.flushing = true
	for cw.pend != nil {
		buf, segs, g, dl := cw.pend, cw.segs, cw.gen, cw.earliest
		cw.pend, cw.segs, cw.gen, cw.earliest = nil, nil, nil, time.Time{}
		cw.mu.Unlock()

		g.err = cw.flush(buf.b, segs, dl, g.frames)
		releaseSegs(segs)
		buf.Release()
		close(g.done)

		cw.mu.Lock()
		if g.err != nil && cw.brokenByFlush(g.err) {
			cw.broken = true
			// Fail everything that queued behind the corrupting flush:
			// its bytes must never reach the wire. Queued external
			// leases are released — abandoned, not written.
			if cw.pend != nil {
				cw.pend.Release()
				cw.pend = nil
				releaseSegs(cw.segs)
				cw.segs = nil
				cw.gen.err = ErrWriterBroken
				close(cw.gen.done)
				cw.gen = nil
				cw.earliest = time.Time{}
			}
		}
	}
	cw.flushing = false
	cw.mu.Unlock()
	return gen.err
}

// releaseSegs ends the leases of a generation's external segments.
func releaseSegs(segs []extSeg) {
	for i := range segs {
		if segs[i].release != nil {
			segs[i].release()
		}
	}
}

// flush issues the write for one batch, arming or clearing the conn
// write deadline first. A batch without external segments leaves in a
// single Write call; one with segments leaves as a vectored write
// (net.Buffers — writev on TCP conns, sequential writes elsewhere)
// that interleaves encode-buffer spans with the spliced segments.
// Runs with flushing held (no lock).
func (cw *CoalescedWriter) flush(buf []byte, segs []extSeg, dl time.Time, frames int) error {
	if cw.dw != nil {
		if !dl.IsZero() {
			_ = cw.dw.SetWriteDeadline(dl)
			cw.armed = true
		} else if cw.armed {
			_ = cw.dw.SetWriteDeadline(time.Time{})
			cw.armed = false
		}
	}
	var n int64
	var err error
	total := len(buf)
	if len(segs) == 0 {
		var ni int
		ni, err = cw.w.Write(buf)
		n = int64(ni)
	} else {
		bufs := make(net.Buffers, 0, 2*len(segs)+1)
		prev := 0
		for i := range segs {
			if segs[i].off > prev {
				bufs = append(bufs, buf[prev:segs[i].off])
				prev = segs[i].off
			}
			if len(segs[i].b) > 0 {
				bufs = append(bufs, segs[i].b)
				total += len(segs[i].b)
			}
		}
		if prev < len(buf) {
			bufs = append(bufs, buf[prev:])
		}
		n, err = bufs.WriteTo(cw.w)
	}
	if cw.ob != nil {
		cw.ob(frames, total)
	}
	if err != nil && n > 0 && n < int64(total) {
		// A prefix reached the peer: the stream is mid-frame and every
		// further byte would be parsed as garbage.
		return &partialFlushError{err: err}
	}
	return err
}

// partialFlushError marks a flush that wrote a strict prefix of its
// batch — the condition that permanently corrupts the framing.
type partialFlushError struct{ err error }

func (e *partialFlushError) Error() string { return "wire: partial flush: " + e.err.Error() }
func (e *partialFlushError) Unwrap() error { return e.err }

// brokenByFlush reports whether a flush error corrupted the stream.
func (cw *CoalescedWriter) brokenByFlush(err error) bool {
	var p *partialFlushError
	return errors.As(err, &p)
}
