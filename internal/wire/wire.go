// Package wire implements the binary framing and primitive codecs used by
// the FT-Cache RPC layer. It plays the role Mercury's encoding layer
// played in the C++ artifact: fixed little-endian integers, length-
// prefixed byte strings, and a compact frame header.
//
// Frame layout on the wire (all little-endian):
//
//	offset size field
//	0      4    frame length (bytes after this field)
//	4      2    magic 0xF7CA
//	6      1    version (currently 1)
//	7      1    type (Request | Response)
//	8      8    request id
//	16     2    opcode
//	18     2    status (0 for requests)
//	20     n    payload
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame types.
const (
	TypeRequest  = 1
	TypeResponse = 2
)

// Magic identifies FT-Cache frames; a mismatch means a foreign or corrupt
// stream and the connection must be dropped.
const Magic = 0xF7CA

// Version is the current protocol version.
const Version = 1

const headerLen = 16 // bytes after the length field

// DefaultMaxPayload bounds a frame's payload to guard against corrupt
// length prefixes. Large enough for one full cache object read.
const DefaultMaxPayload = 64 << 20

// Frame is one request or response message.
type Frame struct {
	Type    uint8
	ID      uint64
	Op      uint16
	Status  uint16
	Payload []byte
}

// Errors returned by frame parsing.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrFrameTooBig = errors.New("wire: frame exceeds max payload")
	ErrShortFrame  = errors.New("wire: frame shorter than header")
)

// Buf is a leased frame-body buffer from the package pool. Release
// returns it for reuse; after Release the bytes (and any Frame.Payload
// aliasing them) must no longer be touched. The zero-value rule for
// safety: every ReadFramePooled success pairs with exactly one Release.
type Buf struct {
	b []byte
}

// Bytes returns the leased bytes (the frame body after the length field).
func (b *Buf) Bytes() []byte { return b.b }

// Release returns the buffer to the pool. Double-release is a no-op.
// Oversized buffers (above maxPooledBuf) are dropped instead of pooled
// so one giant frame cannot pin memory for the process lifetime.
func (b *Buf) Release() {
	if b == nil || b.b == nil {
		return
	}
	if cap(b.b) > maxPooledBuf {
		b.b = nil // let the GC take the oversized backing array
		return
	}
	b.b = b.b[:0]
	bufPool.Put(b)
}

// bufPool recycles frame encode/decode buffers.
var bufPool = sync.Pool{New: func() any { return new(Buf) }}

const maxPooledBuf = 1 << 20

func acquireBuf(n int) *Buf {
	b := bufPool.Get().(*Buf)
	if cap(b.b) < n {
		b.b = make([]byte, n)
	} else {
		b.b = b.b[:n]
	}
	return b
}

// AppendFrame encodes f (length prefix, header, payload) onto dst and
// returns the extended slice — the append-style primitive WriteFrame and
// the coalescing writer share, so one buffer can hold many frames and a
// single Write flushes them all.
func AppendFrame(dst []byte, f *Frame) []byte {
	return appendFrameHead(dst, f, 0)
}

// appendFrameHead is AppendFrame with room declared for extLen external
// payload bytes that will be spliced in at write time (the zero-copy
// tail of a leased response): the length prefix covers Payload+extLen,
// but only Payload is encoded here.
func appendFrameHead(dst []byte, f *Frame, extLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+len(f.Payload)+extLen))
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, f.Type)
	dst = binary.LittleEndian.AppendUint64(dst, f.ID)
	dst = binary.LittleEndian.AppendUint16(dst, f.Op)
	dst = binary.LittleEndian.AppendUint16(dst, f.Status)
	return append(dst, f.Payload...)
}

// WriteFrame serializes f to w in a single Write call (one buffer) so
// concurrent writers only need external mutual exclusion per frame. The
// encode buffer comes from an internal pool, so steady-state framing does
// not allocate; w must not retain the slice past the Write call (no
// net.Conn or bytes.Buffer does).
func WriteFrame(w io.Writer, f *Frame) error {
	bp := acquireBuf(4 + headerLen + len(f.Payload))
	bp.b = AppendFrame(bp.b[:0], f)
	_, err := w.Write(bp.b)
	bp.Release()
	return err
}

// readHeader reads and validates the length prefix and fixed header into
// hdr (which must be 4+headerLen bytes of pooled or otherwise long-lived
// memory, so the interface call to r does not force a per-frame heap
// allocation), returning the payload byte count still unread on r.
func readHeader(r io.Reader, maxPayload int, hdr []byte, f *Frame) (int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < headerLen {
		return 0, ErrShortFrame
	}
	if int(n)-headerLen > maxPayload {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if _, err := io.ReadFull(r, hdr[4:4+headerLen]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != Magic {
		return 0, ErrBadMagic
	}
	if hdr[6] != Version {
		return 0, ErrBadVersion
	}
	f.Type = hdr[7]
	f.ID = binary.LittleEndian.Uint64(hdr[8:16])
	f.Op = binary.LittleEndian.Uint16(hdr[16:18])
	f.Status = binary.LittleEndian.Uint16(hdr[18:20])
	return int(n) - headerLen, nil
}

// ReadFrame reads one frame from r. maxPayload <= 0 selects
// DefaultMaxPayload. The returned payload is freshly allocated and owned
// by the caller — use this on paths that hand the payload to application
// code (e.g. the RPC client's response loop). It performs exactly one
// allocation per non-empty frame: the payload itself.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	var f Frame
	hp := acquireBuf(4 + headerLen)
	n, err := readHeader(r, maxPayload, hp.b, &f)
	hp.Release()
	if err != nil {
		return Frame{}, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// ReadFramePooled reads one frame whose payload is leased from the
// package buffer pool: the steady-state receive path of a server does
// zero per-frame allocations. Frame.Payload aliases the lease; the caller
// must call Release exactly once, after it is done with the payload (and
// after anything derived from it that still aliases it). On error the
// lease is already released and the returned *Buf is nil.
func ReadFramePooled(r io.Reader, maxPayload int) (Frame, *Buf, error) {
	var f Frame
	bp := acquireBuf(4 + headerLen)
	n, err := readHeader(r, maxPayload, bp.b, &f)
	if err != nil {
		bp.Release()
		return Frame{}, nil, err
	}
	// Reuse the lease for the payload now that the header is parsed.
	if cap(bp.b) < n {
		bp.b = make([]byte, n)
	} else {
		bp.b = bp.b[:n]
	}
	if n > 0 {
		if _, err := io.ReadFull(r, bp.b); err != nil {
			bp.Release()
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, nil, err
		}
	}
	f.Payload = bp.b
	return f, bp, nil
}

// Buffer is an append-only encoder for message payloads.
type Buffer struct {
	b []byte
}

// NewBuffer creates a Buffer with the given capacity hint.
func NewBuffer(capacity int) *Buffer { return &Buffer{b: make([]byte, 0, capacity)} }

// Bytes returns the encoded payload.
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the current encoded length.
func (e *Buffer) Len() int { return len(e.b) }

// Reset empties the buffer, keeping the backing array for reuse.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// U8 appends a byte.
func (e *Buffer) U8(v uint8) *Buffer { e.b = append(e.b, v); return e }

// U16 appends a little-endian uint16.
func (e *Buffer) U16(v uint16) *Buffer {
	e.b = binary.LittleEndian.AppendUint16(e.b, v)
	return e
}

// U32 appends a little-endian uint32.
func (e *Buffer) U32(v uint32) *Buffer {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
	return e
}

// U64 appends a little-endian uint64.
func (e *Buffer) U64(v uint64) *Buffer {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
	return e
}

// I64 appends a little-endian int64 (two's complement).
func (e *Buffer) I64(v int64) *Buffer { return e.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Buffer) Bool(v bool) *Buffer {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// Bytes32 appends a uint32 length prefix followed by raw bytes.
func (e *Buffer) Bytes32(v []byte) *Buffer {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
	return e
}

// String appends a length-prefixed UTF-8 string.
func (e *Buffer) String(s string) *Buffer {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// ErrTruncated indicates a payload ended before a field was complete.
var ErrTruncated = errors.New("wire: truncated payload")

// Reader decodes primitive fields from a payload with a sticky error:
// after any failure every subsequent read returns zero values, so callers
// can decode a whole struct and check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps payload b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (d *Reader) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Reader) Remaining() int { return len(d.b) - d.off }

func (d *Reader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = ErrTruncated
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// U8 reads one byte.
func (d *Reader) U8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U16 reads a little-endian uint16.
func (d *Reader) U16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

// U32 reads a little-endian uint32.
func (d *Reader) U32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a little-endian uint64.
func (d *Reader) U64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// I64 reads a little-endian int64.
func (d *Reader) I64() int64 { return int64(d.U64()) }

// Bool reads one byte as a boolean.
func (d *Reader) Bool() bool { return d.U8() != 0 }

// Bytes32 reads a uint32-length-prefixed byte slice. The returned slice
// aliases the payload; callers that retain it must copy.
func (d *Reader) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Reader) String() string { return string(d.Bytes32()) }
