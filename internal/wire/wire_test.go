package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeRequest, ID: 1, Op: 7, Payload: []byte("hello")},
		{Type: TypeResponse, ID: 1 << 60, Op: 65535, Status: 42, Payload: nil},
		{Type: TypeRequest, ID: 0, Op: 0, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &f); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got.Type != f.Type || got.ID != f.ID || got.Op != f.Op || got.Status != f.Status {
			t.Errorf("header mismatch: got %+v want %+v", got, f)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("payload mismatch: %d vs %d bytes", len(got.Payload), len(f.Payload))
		}
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(id uint64, op, status uint16, payload []byte) bool {
		in := Frame{Type: TypeRequest, ID: id, Op: op, Status: status, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf, 0)
		return err == nil && out.ID == id && out.Op == op && out.Status == status &&
			bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsBadMagic(t *testing.T) {
	f := Frame{Type: TypeRequest, ID: 1, Op: 2, Payload: []byte("x")}
	var buf bytes.Buffer
	WriteFrame(&buf, &f)
	b := buf.Bytes()
	b[4] ^= 0xFF // corrupt magic
	if _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameRejectsBadVersion(t *testing.T) {
	f := Frame{Type: TypeRequest, ID: 1, Op: 2}
	var buf bytes.Buffer
	WriteFrame(&buf, &f)
	b := buf.Bytes()
	b[6] = 99
	if _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	f := Frame{Type: TypeRequest, ID: 1, Payload: make([]byte, 4096)}
	var buf bytes.Buffer
	WriteFrame(&buf, &f)
	if _, err := ReadFrame(&buf, 1024); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestReadFrameRejectsShortLength(t *testing.T) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], 3) // < header length
	if _, err := ReadFrame(bytes.NewReader(b[:]), 0); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Errorf("empty stream err = %v, want EOF", err)
	}
	// Truncated body.
	f := Frame{Type: TypeRequest, ID: 9, Payload: []byte("abcdef")}
	var buf bytes.Buffer
	WriteFrame(&buf, &f)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc), 0); err == nil {
		t.Error("truncated frame should fail")
	}
}

func TestBufferReaderRoundTrip(t *testing.T) {
	e := NewBuffer(64)
	e.U8(7).U16(300).U32(70000).U64(1 << 40).I64(-12345).Bool(true).Bool(false)
	e.String("cosmoUniverse/train/u.tfrecord").Bytes32([]byte{1, 2, 3})

	d := NewReader(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U16(); v != 300 {
		t.Errorf("U16 = %d", v)
	}
	if v := d.U32(); v != 70000 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<40 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -12345 {
		t.Errorf("I64 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if s := d.String(); s != "cosmoUniverse/train/u.tfrecord" {
		t.Errorf("String = %q", s)
	}
	if b := d.Bytes32(); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", b)
	}
	if d.Err() != nil {
		t.Errorf("unexpected error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	d := NewReader([]byte{1, 2}) // too short for U32
	_ = d.U32()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
	// Every later read must be a safe zero value.
	if d.U64() != 0 || d.String() != "" || d.Bytes32() != nil || d.Bool() {
		t.Error("reads after error should return zero values")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Error("error must stay sticky")
	}
}

func TestReaderTruncatedString(t *testing.T) {
	e := NewBuffer(16)
	e.String("hello world")
	b := e.Bytes()[:6] // cut inside the string body
	d := NewReader(b)
	if s := d.String(); s != "" {
		t.Errorf("truncated string decoded to %q", s)
	}
	if d.Err() == nil {
		t.Error("expected truncation error")
	}
}

func TestBufferQuickStrings(t *testing.T) {
	f := func(a, b string, n uint32) bool {
		e := NewBuffer(0)
		e.String(a).U32(n).String(b)
		d := NewReader(e.Bytes())
		return d.String() == a && d.U32() == n && d.String() == b && d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteFrame4K(b *testing.B) {
	f := Frame{Type: TypeRequest, ID: 1, Op: 3, Payload: make([]byte, 4096)}
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WriteFrame(io.Discard, &f)
	}
}

func BenchmarkFrameRoundTrip4K(b *testing.B) {
	f := Frame{Type: TypeRequest, ID: 1, Op: 3, Payload: make([]byte, 4096)}
	var buf bytes.Buffer
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		WriteFrame(&buf, &f)
		if _, err := ReadFrame(&buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
