package wire

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWriteFrameExtWireEquivalence(t *testing.T) {
	// An ext frame must produce exactly the bytes of a plain frame whose
	// payload is head||ext — the peer cannot tell the difference.
	head, ext := []byte{1, 2, 3}, []byte("external-tail")
	var got bytes.Buffer
	cw := NewCoalescedWriter(&got, nil)
	released := 0
	f := Frame{Type: TypeResponse, ID: 42, Op: 2, Status: 0, Payload: head}
	if err := cw.WriteFrameExt(&f, ext, func() { released++ }, time.Time{}); err != nil {
		t.Fatalf("WriteFrameExt: %v", err)
	}
	if released != 1 {
		t.Fatalf("release fired %d times, want 1", released)
	}
	var want bytes.Buffer
	plain := Frame{Type: TypeResponse, ID: 42, Op: 2, Status: 0, Payload: append(append([]byte(nil), head...), ext...)}
	if err := WriteFrame(&want, &plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("ext frame bytes differ from plain frame:\n got %x\nwant %x", got.Bytes(), want.Bytes())
	}
}

func TestWriteFrameExtNilExt(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCoalescedWriter(&buf, nil)
	released := 0
	f := Frame{Type: TypeResponse, ID: 1, Payload: []byte("head-only")}
	if err := cw.WriteFrameExt(&f, nil, func() { released++ }, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Fatalf("release fired %d times, want 1", released)
	}
	got := collectFrames(t, &buf)
	if len(got) != 1 || string(got[0].Payload) != "head-only" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestWriteFrameExtConcurrentMix(t *testing.T) {
	// Plain and ext frames interleaved from many goroutines through a
	// slow writer (forcing multi-frame batches): every frame must decode
	// with its spliced payload intact and every release must fire.
	const goroutines, perG = 8, 40
	w := &slowBuffer{delay: 200 * time.Microsecond}
	cw := NewCoalescedWriter(w, nil)
	var releases atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := uint64(g*perG + i)
				body := fmt.Sprintf("g%d-i%d", g, i)
				if i%2 == 0 {
					f := Frame{Type: TypeResponse, ID: id, Payload: []byte("H:")}
					if err := cw.WriteFrameExt(&f, []byte(body), func() { releases.Add(1) }, time.Time{}); err != nil {
						t.Errorf("ext write %d: %v", id, err)
						return
					}
				} else {
					f := Frame{Type: TypeResponse, ID: id, Payload: []byte("H:" + body)}
					if err := cw.WriteFrame(&f); err != nil {
						t.Errorf("plain write %d: %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	got := collectFrames(t, &w.buf)
	if len(got) != goroutines*perG {
		t.Fatalf("decoded %d frames, want %d", len(got), goroutines*perG)
	}
	for _, f := range got {
		g, i := int(f.ID)/perG, int(f.ID)%perG
		want := fmt.Sprintf("H:g%d-i%d", g, i)
		if string(f.Payload) != want {
			t.Fatalf("frame %d payload %q, want %q", f.ID, f.Payload, want)
		}
	}
	if releases.Load() != goroutines*perG/2 {
		t.Fatalf("releases=%d, want %d", releases.Load(), goroutines*perG/2)
	}
}

func TestWriteFrameExtReleasedOnCleanError(t *testing.T) {
	w := &errWriter{fails: 1}
	cw := NewCoalescedWriter(w, nil)
	released := 0
	f := Frame{Type: TypeResponse, ID: 1, Payload: []byte("h")}
	if err := cw.WriteFrameExt(&f, []byte("x"), func() { released++ }, time.Time{}); err == nil {
		t.Fatal("want error from failing writer")
	}
	if released != 1 {
		t.Fatalf("release fired %d times on clean error, want 1", released)
	}
	// Clean failure (nothing consumed) must not latch the writer.
	if err := cw.WriteFrameExt(&f, []byte("y"), func() { released++ }, time.Time{}); err != nil {
		t.Fatalf("writer stuck after clean failure: %v", err)
	}
	if released != 2 {
		t.Fatalf("release fired %d times total, want 2", released)
	}
}

func TestWriteFrameExtReleasedOnBrokenWriter(t *testing.T) {
	cw := NewCoalescedWriter(&partialWriter{}, nil)
	f := Frame{Type: TypeResponse, ID: 1, Payload: []byte("corruptible")}
	released := 0
	if err := cw.WriteFrameExt(&f, []byte("tail"), func() { released++ }, time.Time{}); err == nil {
		t.Fatal("want error from partial write")
	}
	if released != 1 {
		t.Fatalf("release fired %d times after partial flush, want 1", released)
	}
	// The writer is now broken: further ext writes must refuse AND still
	// consume their release — the lease must never leak.
	err := cw.WriteFrameExt(&f, []byte("tail2"), func() { released++ }, time.Time{})
	if !errors.Is(err, ErrWriterBroken) {
		t.Fatalf("err=%v, want ErrWriterBroken", err)
	}
	if released != 2 {
		t.Fatalf("release fired %d times total, want 2", released)
	}
}
