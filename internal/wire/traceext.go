package wire

// Trace context extension: an optional, versioned trailer a request
// payload may carry so a server can stitch its handler spans under the
// client's request span. The extension rides *inside* the opaque frame
// payload (after the message's own fields), so the frame format — and
// every peer that does not understand tracing — is untouched: absent
// means zero cost, and an old decoder that ignores trailing bytes keeps
// working.
//
// Encoding (little-endian, appended after the message fields):
//
//	offset size field
//	0      1    extension version (currently 1)
//	1      1    body length in bytes (16 for version 1)
//	2      n    body — v1: trace id (u64), parent span id (u64)
//
// The explicit body length makes unknown versions skippable: a decoder
// that sees a future version steps over the body and carries on. A
// truncated or malformed extension is a decode error — corrupt trailers
// must never be silently folded into application data.

// TraceExtVersion is the current trace-extension version.
const TraceExtVersion = 1

// traceExtV1Body is the v1 body size: two u64 ids.
const traceExtV1Body = 16

// TraceExt is a decoded trace-context extension. The zero value (both
// ids zero) means "absent" — id generators never mint a zero trace id.
type TraceExt struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the extension carries a trace context.
func (x TraceExt) Valid() bool { return x.TraceID != 0 }

// AppendTraceExt appends x to e in extension wire form. Callers append
// it after the message's own fields, and only when x is valid.
func (e *Buffer) AppendTraceExt(x TraceExt) *Buffer {
	e.U8(TraceExtVersion)
	e.U8(traceExtV1Body)
	e.U64(x.TraceID)
	e.U64(x.SpanID)
	return e
}

// TraceExtSize is the encoded size of a v1 extension (for capacity
// hints).
const TraceExtSize = 2 + traceExtV1Body

// DecodeTraceExt consumes the optional trace extension at the reader's
// current position. Contract, in order:
//
//   - no bytes remain → (zero, false), no error: the extension is absent;
//   - a well-formed extension of an unknown version → skipped, (zero,
//     false): forward compatibility, old nodes ignore new trailers;
//   - a v1 extension with a short body, a body length past the payload
//     end, or any trailing bytes after the extension → the reader's
//     sticky error is set: corrupt trailers are rejected, never folded
//     into application data.
//
// Decoders call this after their own fields when Remaining() > 0 and
// then check Err() as usual.
func (d *Reader) DecodeTraceExt() (TraceExt, bool) {
	if d.err != nil || d.Remaining() == 0 {
		return TraceExt{}, false
	}
	ver := d.U8()
	n := int(d.U8())
	body := d.take(n)
	if d.err != nil {
		return TraceExt{}, false
	}
	if d.Remaining() != 0 {
		// At most one extension may trail a payload; anything after it
		// is corruption.
		d.err = ErrTruncated
		return TraceExt{}, false
	}
	if ver != TraceExtVersion {
		return TraceExt{}, false // unknown version: skipped, not an error
	}
	if n < traceExtV1Body {
		d.err = ErrTruncated
		return TraceExt{}, false
	}
	// Bytes beyond the v1 ids are tolerated (a future minor revision may
	// grow the body without bumping the version).
	sub := Reader{b: body}
	x := TraceExt{TraceID: sub.U64(), SpanID: sub.U64()}
	return x, true
}
