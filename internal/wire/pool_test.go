package wire

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// TestReadFramePooledMatchesReadFrame decodes the same stream through
// both read paths and requires identical frames.
func TestReadFramePooledMatchesReadFrame(t *testing.T) {
	frames := []Frame{
		{Type: TypeRequest, ID: 1, Op: 7, Payload: []byte("hello")},
		{Type: TypeResponse, ID: 2, Op: 7, Status: 3, Payload: nil},
		{Type: TypeRequest, ID: 1 << 60, Op: 65535, Payload: bytes.Repeat([]byte{0xAB}, 100000)},
	}
	var stream bytes.Buffer
	for i := range frames {
		if err := WriteFrame(&stream, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	raw := append([]byte(nil), stream.Bytes()...)

	plain := bytes.NewReader(raw)
	pooled := bytes.NewReader(raw)
	for i := range frames {
		a, err := ReadFrame(plain, 0)
		if err != nil {
			t.Fatalf("frame %d plain: %v", i, err)
		}
		b, lease, err := ReadFramePooled(pooled, 0)
		if err != nil {
			t.Fatalf("frame %d pooled: %v", i, err)
		}
		if a.Type != b.Type || a.ID != b.ID || a.Op != b.Op || a.Status != b.Status ||
			!bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("frame %d: pooled decode diverges: %+v vs %+v", i, a, b)
		}
		lease.Release()
	}
}

// TestReadFramePooledErrors verifies every error path releases the lease
// (no panic, no deadlock under pool reuse) and reports the same error as
// the plain path.
func TestReadFramePooledErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short length", []byte{1, 2}},
		{"truncated header", []byte{16, 0, 0, 0, 0xCA}},
		{"bad magic", func() []byte {
			var b bytes.Buffer
			WriteFrame(&b, &Frame{Type: TypeRequest, ID: 1})
			d := b.Bytes()
			d[4] = 0x00
			return d
		}()},
		{"truncated payload", func() []byte {
			var b bytes.Buffer
			WriteFrame(&b, &Frame{Type: TypeRequest, ID: 1, Payload: []byte("abcdef")})
			return b.Bytes()[:b.Len()-3]
		}()},
		{"oversized", func() []byte {
			var b bytes.Buffer
			WriteFrame(&b, &Frame{Type: TypeRequest, ID: 1, Payload: make([]byte, 2048)})
			return b.Bytes()
		}()},
	}
	for _, tc := range cases {
		maxPayload := 0
		if tc.name == "oversized" {
			maxPayload = 1024
		}
		_, errPlain := ReadFrame(bytes.NewReader(tc.data), maxPayload)
		_, lease, errPooled := ReadFramePooled(bytes.NewReader(tc.data), maxPayload)
		if errPlain == nil || errPooled == nil {
			t.Errorf("%s: expected errors, got plain=%v pooled=%v", tc.name, errPlain, errPooled)
			continue
		}
		if lease != nil {
			t.Errorf("%s: lease must be nil on error", tc.name)
		}
		if errPlain.Error() != errPooled.Error() &&
			(errPlain != io.EOF || errPooled != io.EOF) {
			t.Errorf("%s: error divergence: plain=%v pooled=%v", tc.name, errPlain, errPooled)
		}
	}
}

// TestPooledRoundtripsConcurrent races many goroutines through the
// shared buffer pool — encode, pooled decode, verify, release — to shake
// out aliasing between leases. Run under -race in CI.
func TestPooledRoundtripsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 3000; i++ {
				// Payload contents derive from (w, i) so cross-goroutine
				// buffer reuse shows up as corruption.
				size := 1 + (i*17+w)%4096
				payload := bytes.Repeat([]byte{byte(w*31 + i)}, size)
				in := Frame{Type: TypeRequest, ID: uint64(i), Op: uint16(w), Payload: payload}
				buf.Reset()
				if err := WriteFrame(&buf, &in); err != nil {
					t.Errorf("w%d i%d write: %v", w, i, err)
					return
				}
				got, lease, err := ReadFramePooled(&buf, 0)
				if err != nil {
					t.Errorf("w%d i%d read: %v", w, i, err)
					return
				}
				if got.ID != in.ID || got.Op != in.Op || !bytes.Equal(got.Payload, payload) {
					t.Errorf("w%d i%d: frame corrupted through pool", w, i)
					lease.Release()
					return
				}
				lease.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestOversizedLeaseNotPooled checks that a giant frame's buffer is not
// returned to the pool (it would pin memory for the process lifetime).
func TestOversizedLeaseNotPooled(t *testing.T) {
	big := make([]byte, maxPooledBuf+1)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TypeRequest, ID: 9, Payload: big}); err != nil {
		t.Fatal(err)
	}
	f, lease, err := ReadFramePooled(&buf, maxPooledBuf*2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != len(big) {
		t.Fatalf("payload length %d, want %d", len(f.Payload), len(big))
	}
	lease.Release()
	// Whether or not the pool hands back the same *Buf, a fresh acquire
	// must never see a stale oversized backing array re-leased: the next
	// pooled read of a small frame gets a correctly sized view.
	buf.Reset()
	if err := WriteFrame(&buf, &Frame{Type: TypeRequest, ID: 10, Payload: []byte("tiny")}); err != nil {
		t.Fatal(err)
	}
	f2, lease2, err := ReadFramePooled(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Payload) != "tiny" {
		t.Fatalf("payload = %q, want tiny", f2.Payload)
	}
	lease2.Release()
}
