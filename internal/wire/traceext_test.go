package wire

import (
	"bytes"
	"testing"
)

func TestTraceExtRoundTrip(t *testing.T) {
	x := TraceExt{TraceID: 0xDEADBEEF01234567, SpanID: 0xCAFEBABE89ABCDEF}
	e := NewBuffer(0)
	e.U64(42) // a message field ahead of the extension
	e.AppendTraceExt(x)
	if got := len(e.Bytes()); got != 8+TraceExtSize {
		t.Fatalf("encoded size = %d, want %d", got, 8+TraceExtSize)
	}

	d := NewReader(e.Bytes())
	if v := d.U64(); v != 42 {
		t.Fatalf("message field = %d, want 42", v)
	}
	got, ok := d.DecodeTraceExt()
	if !ok || got != x {
		t.Fatalf("DecodeTraceExt = (%+v, %v), want (%+v, true)", got, ok, x)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if !got.Valid() {
		t.Fatal("round-tripped extension reports invalid")
	}
}

func TestTraceExtAbsent(t *testing.T) {
	d := NewReader(nil)
	x, ok := d.DecodeTraceExt()
	if ok || x.Valid() || d.Err() != nil {
		t.Fatalf("absent ext = (%+v, %v, err %v), want zero/false/nil", x, ok, d.Err())
	}
}

func TestTraceExtUnknownVersionSkipped(t *testing.T) {
	e := NewBuffer(0)
	e.U8(99).U8(3).U8(1).U8(2).U8(3) // version 99, 3-byte body
	d := NewReader(e.Bytes())
	x, ok := d.DecodeTraceExt()
	if ok || x.Valid() {
		t.Fatalf("unknown version decoded as %+v", x)
	}
	if d.Err() != nil {
		t.Fatalf("unknown version must be skipped, got error %v", d.Err())
	}
}

func TestTraceExtCorruptRejected(t *testing.T) {
	valid := NewBuffer(0).AppendTraceExt(TraceExt{TraceID: 1, SpanID: 2}).Bytes()
	cases := map[string][]byte{
		"truncated body":        valid[:len(valid)-3],
		"length past end":       {TraceExtVersion, 200, 0, 0},
		"short v1 body":         {TraceExtVersion, 4, 1, 2, 3, 4},
		"trailing bytes":        append(append([]byte{}, valid...), 0xFF),
		"bare version byte":     {TraceExtVersion},
		"unknown ver truncated": {99, 10, 1, 2},
	}
	for name, raw := range cases {
		d := NewReader(raw)
		if _, ok := d.DecodeTraceExt(); ok {
			t.Errorf("%s: decoded successfully", name)
		}
		if d.Err() == nil {
			t.Errorf("%s: no sticky error", name)
		}
	}
}

func TestTraceExtZeroIDMeansAbsent(t *testing.T) {
	if (TraceExt{}).Valid() {
		t.Fatal("zero extension reports valid")
	}
	if !(TraceExt{TraceID: 1}).Valid() {
		t.Fatal("non-zero trace id reports invalid")
	}
}

// FuzzTraceExt hardens the optional-extension decoder: arbitrary
// trailers must decode, skip, or set the sticky error — never panic,
// and never disagree between the plain and pooled frame-delivery
// paths. This is the path every OpRead/OpPut/OpPutBatch request payload
// funnels through when tracing is on.
func FuzzTraceExt(f *testing.F) {
	valid := NewBuffer(0).AppendTraceExt(TraceExt{TraceID: 7, SpanID: 9}).Bytes()
	f.Add([]byte{})
	f.Add(append([]byte{}, valid...))
	f.Add(valid[:5])
	f.Add([]byte{99, 4, 1, 2, 3, 4})               // unknown version
	f.Add([]byte{TraceExtVersion, 255, 0})         // length past end
	f.Add(append(append([]byte{}, valid...), 0x1)) // trailing byte
	f.Add(bytes.Repeat([]byte{TraceExtVersion}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewReader(data)
		x, ok := d.DecodeTraceExt()
		if ok {
			if d.Err() != nil {
				t.Fatalf("ok decode with sticky error %v", d.Err())
			}
			if d.Remaining() != 0 {
				t.Fatalf("ok decode left %d bytes", d.Remaining())
			}
			// A decoded extension must re-encode to a decodable form
			// carrying the same ids (the encoder emits the v1 body,
			// so oversized-but-tolerated bodies normalize).
			re := NewBuffer(0).AppendTraceExt(x).Bytes()
			rd := NewReader(re)
			y, rok := rd.DecodeTraceExt()
			if !rok || y != x {
				t.Fatalf("re-decode = (%+v, %v), want (%+v, true)", y, rok, x)
			}
		}

		// The same payload delivered through the pooled frame path must
		// reach an identical decode decision: frame transport is opaque
		// to the extension.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &Frame{Type: TypeRequest, ID: 1, Op: 2, Payload: data}); err != nil {
			return // payload too large for a frame: nothing to compare
		}
		pfr, lease, perr := ReadFramePooled(&buf, 1<<21)
		if perr != nil {
			t.Fatalf("pooled frame decode of valid frame failed: %v", perr)
		}
		pd := NewReader(pfr.Payload)
		px, pok := pd.DecodeTraceExt()
		if pok != ok || px != x || (pd.Err() == nil) != (d.Err() == nil) {
			t.Fatalf("pooled path disagrees: (%+v, %v, err %v) vs (%+v, %v, err %v)",
				px, pok, pd.Err(), x, ok, d.Err())
		}
		lease.Release()
	})
}
