package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectFrames decodes every frame in buf.
func collectFrames(t *testing.T, buf *bytes.Buffer) []Frame {
	t.Helper()
	var out []Frame
	for buf.Len() > 0 {
		f, err := ReadFrame(buf, 0)
		if err != nil {
			t.Fatalf("decode frame %d: %v", len(out), err)
		}
		out = append(out, f)
	}
	return out
}

func TestCoalescedWriterSingleFrame(t *testing.T) {
	var buf bytes.Buffer
	var flushes, frames int
	cw := NewCoalescedWriter(&buf, func(f, b int) { flushes++; frames += f })
	in := Frame{Type: TypeRequest, ID: 7, Op: 3, Status: 0, Payload: []byte("solo")}
	if err := cw.WriteFrame(&in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got := collectFrames(t, &buf)
	if len(got) != 1 || got[0].ID != 7 || string(got[0].Payload) != "solo" {
		t.Fatalf("decoded %+v", got)
	}
	if flushes != 1 || frames != 1 {
		t.Fatalf("observer saw flushes=%d frames=%d", flushes, frames)
	}
}

// slowBuffer delays every Write so concurrent callers pile frames into
// the pending buffer — forcing multi-frame flushes deterministically.
type slowBuffer struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	delay time.Duration
}

func (w *slowBuffer) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestCoalescedWriterConcurrentIntegrity(t *testing.T) {
	const goroutines, perG = 8, 50
	w := &slowBuffer{delay: 200 * time.Microsecond}
	var flushes, frames atomic.Int64
	var maxBatch atomic.Int64
	cw := NewCoalescedWriter(w, func(f, b int) {
		flushes.Add(1)
		frames.Add(int64(f))
		for {
			cur := maxBatch.Load()
			if int64(f) <= cur || maxBatch.CompareAndSwap(cur, int64(f)) {
				break
			}
		}
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f := Frame{
					Type:    TypeRequest,
					ID:      uint64(g*perG + i),
					Op:      uint16(g),
					Payload: []byte(fmt.Sprintf("g%d-i%d", g, i)),
				}
				if err := cw.WriteFrame(&f); err != nil {
					t.Errorf("WriteFrame g%d i%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	got := collectFrames(t, &w.buf)
	if len(got) != goroutines*perG {
		t.Fatalf("decoded %d frames, want %d", len(got), goroutines*perG)
	}
	seen := make(map[uint64]string, len(got))
	for _, f := range got {
		seen[f.ID] = string(f.Payload)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			id := uint64(g*perG + i)
			if seen[id] != fmt.Sprintf("g%d-i%d", g, i) {
				t.Fatalf("frame %d payload %q", id, seen[id])
			}
		}
	}
	if frames.Load() != goroutines*perG {
		t.Fatalf("observer frames=%d, want %d", frames.Load(), goroutines*perG)
	}
	if maxBatch.Load() < 2 {
		t.Fatalf("no coalescing observed under a slow writer (max batch %d)", maxBatch.Load())
	}
	if flushes.Load() >= goroutines*perG {
		t.Fatalf("flushes=%d not amortized below frame count %d", flushes.Load(), goroutines*perG)
	}
}

// errWriter fails a configurable number of Writes, consuming nothing.
type errWriter struct {
	mu    sync.Mutex
	fails int
	buf   bytes.Buffer
}

func (w *errWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fails > 0 {
		w.fails--
		return 0, errors.New("injected write failure")
	}
	return w.buf.Write(p)
}

func TestCoalescedWriterCleanErrorNotSticky(t *testing.T) {
	w := &errWriter{fails: 1}
	cw := NewCoalescedWriter(w, nil)
	f := Frame{Type: TypeRequest, ID: 1, Payload: []byte("x")}
	if err := cw.WriteFrame(&f); err == nil {
		t.Fatal("want error from failing writer")
	}
	// Zero bytes reached the stream: framing is intact, the writer must
	// keep working.
	if err := cw.WriteFrame(&f); err != nil {
		t.Fatalf("writer stuck after clean failure: %v", err)
	}
	if got := collectFrames(t, &w.buf); len(got) != 1 {
		t.Fatalf("decoded %d frames, want 1", len(got))
	}
}

// partialWriter consumes half the batch, then fails — the framing
// corruption case.
type partialWriter struct{ wrote bytes.Buffer }

func (w *partialWriter) Write(p []byte) (int, error) {
	n := len(p) / 2
	w.wrote.Write(p[:n])
	return n, errors.New("injected mid-frame failure")
}

func TestCoalescedWriterPartialFlushBreaksStream(t *testing.T) {
	cw := NewCoalescedWriter(&partialWriter{}, nil)
	f := Frame{Type: TypeRequest, ID: 1, Payload: []byte("corruptible")}
	err := cw.WriteFrame(&f)
	if err == nil {
		t.Fatal("want error from partial write")
	}
	if errors.Is(err, ErrWriterBroken) {
		t.Fatal("the corrupting flush itself should carry the write error, not ErrWriterBroken")
	}
	// Every subsequent frame must be refused: a prefix of the previous
	// frame is on the wire and anything appended would be parsed as
	// garbage by the peer.
	if err := cw.WriteFrame(&f); !errors.Is(err, ErrWriterBroken) {
		t.Fatalf("after partial flush: err=%v, want ErrWriterBroken", err)
	}
}

// deadlineBuffer records SetWriteDeadline calls.
type deadlineBuffer struct {
	bytes.Buffer
	deadlines []time.Time
}

func (w *deadlineBuffer) SetWriteDeadline(t time.Time) error {
	w.deadlines = append(w.deadlines, t)
	return nil
}

func TestCoalescedWriterDeadlineArming(t *testing.T) {
	w := &deadlineBuffer{}
	cw := NewCoalescedWriter(w, nil)
	f := Frame{Type: TypeRequest, ID: 1, Payload: []byte("d")}

	// No deadline: SetWriteDeadline must not be touched at all.
	if err := cw.WriteFrameDeadline(&f, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if len(w.deadlines) != 0 {
		t.Fatalf("deadline-free write armed the conn: %v", w.deadlines)
	}

	// Deadline write arms; the next deadline-free write disarms.
	dl := time.Now().Add(time.Hour)
	if err := cw.WriteFrameDeadline(&f, dl); err != nil {
		t.Fatal(err)
	}
	if len(w.deadlines) != 1 || !w.deadlines[0].Equal(dl) {
		t.Fatalf("arming calls %v, want [%v]", w.deadlines, dl)
	}
	if err := cw.WriteFrameDeadline(&f, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if len(w.deadlines) != 2 || !w.deadlines[1].IsZero() {
		t.Fatalf("disarm calls %v, want zero-time clear", w.deadlines)
	}
	if got := collectFrames(t, &w.Buffer); len(got) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(got))
	}
}

// TestCoalescedWriterLoneWriterSequential checks the degenerate case: a
// single caller issuing frames back to back gets one flush per frame
// and unchanged bytes — the pre-coalescing wire format.
func TestCoalescedWriterLoneWriterSequential(t *testing.T) {
	var coalesced bytes.Buffer
	cw := NewCoalescedWriter(&coalesced, nil)
	var plain bytes.Buffer
	for i := 0; i < 10; i++ {
		f := Frame{Type: TypeResponse, ID: uint64(i), Op: 9, Payload: []byte{byte(i)}}
		if err := cw.WriteFrame(&f); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&plain, &f); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(coalesced.Bytes(), plain.Bytes()) {
		t.Fatal("coalesced byte stream differs from plain WriteFrame stream")
	}
}

var _ io.Writer = (*slowBuffer)(nil)
