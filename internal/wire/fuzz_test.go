package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the frame parser against corrupt streams: it
// must return an error or a valid frame, never panic or over-allocate.
func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames and mutations.
	var buf bytes.Buffer
	WriteFrame(&buf, &Frame{Type: TypeRequest, ID: 1, Op: 2, Payload: []byte("seed")})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), 1<<20)
		// The buffer-lease decode path must agree with the allocating
		// path on every input: same error or same frame.
		pfr, lease, perr := ReadFramePooled(bytes.NewReader(data), 1<<20)
		if (err == nil) != (perr == nil) {
			t.Fatalf("decode paths disagree: plain err=%v pooled err=%v", err, perr)
		}
		if err != nil {
			if lease != nil {
				t.Fatal("pooled decode returned a lease alongside an error")
			}
			return
		}
		if pfr.ID != fr.ID || pfr.Op != fr.Op || pfr.Type != fr.Type ||
			pfr.Status != fr.Status || !bytes.Equal(pfr.Payload, fr.Payload) {
			t.Fatal("pooled decode mismatch")
		}
		lease.Release()
		// A successfully parsed frame must round-trip.
		var out bytes.Buffer
		if werr := WriteFrame(&out, &fr); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		fr2, rerr := ReadFrame(&out, 1<<20)
		if rerr != nil {
			t.Fatalf("re-decode failed: %v", rerr)
		}
		if fr2.ID != fr.ID || fr2.Op != fr.Op || fr2.Type != fr.Type ||
			fr2.Status != fr.Status || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzReader hardens the primitive decoder: arbitrary bytes through
// every accessor must never panic.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	e := NewBuffer(0)
	e.U8(1).U64(99).String("x").Bytes32([]byte{4, 5})
	f.Add(e.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewReader(data)
		_ = d.U8()
		_ = d.U16()
		_ = d.U32()
		_ = d.String()
		_ = d.Bytes32()
		_ = d.I64()
		_ = d.Bool()
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
