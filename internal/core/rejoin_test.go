package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/testutil"
)

// TestRejoinWarmsKilledNode: the full elastic re-expansion protocol
// against a hard-killed node (cache lost). The rejoin must warm the
// node's NVMe from the surviving owners *before* the ring swap, so the
// post-rejoin epoch runs PFS-free even though the node came back empty.
func TestRejoinWarmsKilledNode(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := newTestCluster(t, 6, ftcache.KindNVMe)
	ds := smallDataset(120)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, router, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()
	ring := router.(*ftcache.RingRecache).Ring()

	victim := c.Nodes()[2]
	if err := c.Fail(victim, FailKill); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatal(err)
		}
	}
	if ring.Len() != 5 {
		t.Fatalf("ring members = %d after kill", ring.Len())
	}

	// Node reboots with an empty cache; clients must not re-admit it
	// until the warmup lands.
	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := cli.Rejoin(ctx, victim, hvac.RejoinOptions{Keys: ds.AllPaths()})
	if err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if !rep.Revived {
		t.Fatal("rejoin did not revive the node")
	}
	if rep.Probes < 3 {
		t.Errorf("probes = %d, want >= 3", rep.Probes)
	}
	if rep.PlannedKeys == 0 || rep.WarmedFiles != rep.PlannedKeys || rep.WarmErrors != 0 {
		t.Fatalf("warmup incomplete: planned=%d warmed=%d errors=%d",
			rep.PlannedKeys, rep.WarmedFiles, rep.WarmErrors)
	}
	if rep.WarmedBytes != int64(rep.WarmedFiles)*ds.FileBytes {
		t.Errorf("warmed bytes = %d, want %d", rep.WarmedBytes, int64(rep.WarmedFiles)*ds.FileBytes)
	}
	if ring.Len() != 6 {
		t.Fatalf("ring members = %d after rejoin", ring.Len())
	}

	// The warmed node serves its reclaimed arcs from NVMe: a full epoch
	// with zero PFS traffic, even though the node rebooted empty.
	c.FlushMovers()
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("post-rejoin read %d: %v", i, err)
		}
	}
	if reads, _, _ := c.PFS().Counters(); reads != 0 {
		t.Errorf("PFS reads after warm rejoin = %d, want 0", reads)
	}

	// A second Rejoin of the now-alive node must refuse cleanly.
	if _, err := cli.Rejoin(ctx, victim, hvac.RejoinOptions{}); err == nil {
		t.Error("Rejoin of an alive node succeeded")
	}
}

// TestHeartbeatDrivenAutoRejoin: the fully wired loop — heartbeat
// detects the kill, later detects the recovery (K consecutive probes),
// fires OnRevive, and the client rejoins with warmup, no manual steps.
func TestHeartbeatDrivenAutoRejoin(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := newTestCluster(t, 5, ftcache.KindNVMe)
	ds := smallDataset(60)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, router, _ := c.NewClient()
	defer cli.Close()
	ring := router.(*ftcache.RingRecache).Ring()

	rejoined := make(chan hvac.RejoinReport, 1)
	hb := cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
		Interval:        10 * time.Millisecond,
		Timeout:         60 * time.Millisecond,
		ReviveThreshold: 2,
		OnRevive: func(n cluster.NodeID) {
			rep, err := cli.Rejoin(context.Background(), n,
				hvac.RejoinOptions{Probes: 1, Keys: ds.AllPaths()})
			if err == nil {
				rejoined <- rep
			}
		},
	})
	hb.Start()
	defer hb.Stop()

	victim := c.Nodes()[0]
	if err := c.Fail(victim, FailKill); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for cli.Tracker().IsAlive(victim) {
		select {
		case <-deadline:
			t.Fatal("heartbeat never declared the killed node")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-rejoined:
		if !rep.Revived || rep.WarmedFiles == 0 {
			t.Fatalf("auto-rejoin incomplete: %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat never auto-rejoined the restarted node")
	}
	if ring.Len() != 5 {
		t.Fatalf("ring members = %d after auto-rejoin", ring.Len())
	}
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(context.Background(), cli, ds, i); err != nil {
			t.Fatalf("post-auto-rejoin read %d: %v", i, err)
		}
	}
}
