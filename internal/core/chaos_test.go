package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/ftcache"
	"repro/internal/workload"
)

// TestChaosRandomFailuresUnderLoad is the randomized stress version of
// the strategy tests: concurrent readers hammer a ring-recaching cluster
// while nodes are killed at random moments in random modes. Invariants:
//
//  1. no read ever fails (data is always reachable via ring + PFS),
//  2. every read returns the exact staged content,
//  3. total PFS reads stay bounded by cold misses + recache misses
//     (each file fetched at most once per failure epoch + once cold).
func TestChaosRandomFailuresUnderLoad(t *testing.T) {
	const (
		nodes    = 8
		files    = 200
		readers  = 6
		failures = 3
	)
	c, err := NewCluster(ClusterConfig{
		Nodes:        nodes,
		Strategy:     ftcache.KindNVMe,
		RPCTimeout:   80 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := workload.Dataset{Name: "chaos", Prefix: "chaos", NumFiles: files, FileBytes: 128}
	if _, err := c.Stage(ds); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	var readCount sync.Map

	for r := 0; r < readers; r++ {
		cli, _, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		wg.Add(1)
		go func(r int, cli interface {
			Read(context.Context, string) ([]byte, error)
		}) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(files)
				got, err := cli.Read(ctx, ds.FilePath(i))
				if err != nil {
					errCh <- fmt.Errorf("reader %d file %d: %w", r, i, err)
					return
				}
				want := ds.SampleContent(i)
				if len(got) != len(want) || got[0] != want[0] || got[len(got)-1] != want[len(want)-1] {
					errCh <- fmt.Errorf("reader %d file %d: corrupt content", r, i)
					return
				}
				n, _ := readCount.LoadOrStore(r, new(int))
				*(n.(*int))++
			}
		}(r, cli)
	}

	// Chaos: kill nodes at random times in random modes.
	chaosRng := rand.New(rand.NewSource(99))
	for k := 0; k < failures; k++ {
		time.Sleep(time.Duration(30+chaosRng.Intn(60)) * time.Millisecond)
		alive := c.AliveNodes()
		if len(alive) <= nodes-failures {
			break
		}
		victim := alive[chaosRng.Intn(len(alive))]
		mode := FailUnresponsive
		if chaosRng.Intn(2) == 0 {
			mode = FailKill
		}
		if err := c.Fail(victim, mode); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond) // let readers ride through recovery
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	total := 0
	readCount.Range(func(_, v interface{}) bool { total += *(v.(*int)); return true })
	if total < files {
		t.Fatalf("only %d reads completed; chaos starved the workload", total)
	}

	// PFS-read bound: cold misses (≤ files) plus at most one recache per
	// file per failure.
	reads, _, _ := c.PFS().Counters()
	bound := int64(files * (1 + failures))
	if reads > bound {
		t.Errorf("PFS reads %d exceed bound %d — recaching is leaking", reads, bound)
	}
	t.Logf("chaos: %d reads, %d PFS fetches (bound %d), %d survivors",
		total, reads, bound, len(c.AliveNodes()))
}
