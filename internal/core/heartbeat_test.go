package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ftcache"
)

// TestProactiveDetectionAvoidsReadTimeouts wires the heartbeat prober to
// a live client: the failure is declared in the background, so the first
// read after the failure routes straight to the new owner without ever
// waiting out a read-path timeout — the latency win over the paper's
// passive detection.
func TestProactiveDetectionAvoidsReadTimeouts(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(60)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, _, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	// The client doubles as the heartbeat's Pinger; both feed the same
	// tracker, which notifies the router on declaration.
	hb := cluster.NewHeartbeat(cli.Tracker(), cli, cluster.HeartbeatConfig{
		Interval: 10 * time.Millisecond,
		Timeout:  30 * time.Millisecond,
	})
	hb.Start()
	defer hb.Stop()

	victim := c.Nodes()[1]
	c.Fail(victim, FailUnresponsive)

	// Wait for proactive declaration — no reads issued meanwhile.
	deadline := time.After(3 * time.Second)
	for cli.Tracker().IsAlive(victim) {
		select {
		case <-deadline:
			t.Fatal("heartbeat never declared the victim")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	before := cli.Stats().Timeouts
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	after := cli.Stats().Timeouts
	if after != before {
		t.Errorf("read path observed %d timeouts despite proactive detection", after-before)
	}
	if n := cli.Stats().FailoverReads; n != 0 {
		t.Errorf("failover retries = %d, want 0 (routing already updated)", n)
	}
}
