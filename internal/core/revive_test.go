package core

import (
	"context"
	"testing"

	"repro/internal/ftcache"
)

// TestReviveUnresponsiveNode: elastic scale-up after a transient outage.
// The node's cache survived, so after revival it serves its arcs from
// NVMe with zero extra PFS traffic.
func TestReviveUnresponsiveNode(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(80)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, router, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	victim := c.Nodes()[1]
	c.Fail(victim, FailUnresponsive)
	// Trip the detector so the ring drops the node.
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatal(err)
		}
	}
	ring := router.(*ftcache.RingRecache).Ring()
	if ring.Len() != 3 {
		t.Fatalf("ring members = %d after failure", ring.Len())
	}

	// Recovery: server answers again, cluster and client re-admit it.
	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	if !cli.ReviveNode(victim) {
		t.Fatal("client revive reported no transition")
	}
	if cli.ReviveNode(victim) {
		t.Error("double revive should be a no-op")
	}
	if ring.Len() != 4 {
		t.Fatalf("ring members = %d after revival", ring.Len())
	}

	// The node reclaims its original arcs; its cache is intact, so the
	// whole epoch is PFS-free (the ring's minimal-movement property
	// applies symmetrically on re-add).
	c.FlushMovers()
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("post-revival read %d: %v", i, err)
		}
	}
	if reads, _, _ := c.PFS().Counters(); reads != 0 {
		t.Errorf("PFS reads after unresponsive-revival = %d, want 0", reads)
	}
	if !cli.Tracker().IsAlive(victim) {
		t.Error("tracker still reports victim failed")
	}
}

// TestReviveKilledNode: a hard-killed node comes back empty (rebooted);
// it re-warms through its server's miss path — at most its own files hit
// the PFS once.
func TestReviveKilledNode(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(80)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, _, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	victim := c.Nodes()[2]
	c.Fail(victim, FailKill)
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushMovers()

	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	cli.ReviveNode(victim)
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("post-revival read %d: %v", i, err)
		}
	}
	// The replacement daemon's cache was empty; only files on its arcs
	// may have refetched, and only once each.
	reads, _, _ := c.PFS().Counters()
	objs, _ := c.Server(victim).NVMe().Stats()
	if reads == 0 {
		t.Error("expected re-warm traffic for the rebooted node")
	}
	if int(reads) > ds.NumFiles/2 {
		t.Errorf("re-warm reads = %d, should be bounded by the node's arc share", reads)
	}
	if objs == 0 {
		t.Error("revived node cached nothing")
	}
	// Heal check: next epoch is PFS-free again.
	c.FlushMovers()
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		VerifyRead(ctx, cli, ds, i)
	}
	if reads, _, _ := c.PFS().Counters(); reads != 0 {
		t.Errorf("PFS reads after heal = %d", reads)
	}
}

func TestReviveErrorsAndNoops(t *testing.T) {
	c := newTestCluster(t, 2, ftcache.KindNVMe)
	if err := c.Revive("ghost"); err == nil {
		t.Error("reviving unknown node should error")
	}
	if err := c.Revive(c.Nodes()[0]); err != nil {
		t.Errorf("reviving healthy node should be a no-op, got %v", err)
	}
	cli, _, _ := c.NewClient()
	defer cli.Close()
	if cli.ReviveNode(c.Nodes()[0]) {
		t.Error("reviving a healthy node on the client should report false")
	}
}

func TestPFSRedirectRecovery(t *testing.T) {
	c := newTestCluster(t, 3, ftcache.KindPFS)
	ds := smallDataset(60)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, _, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	victim := c.Nodes()[1]
	c.Fail(victim, FailUnresponsive)
	for i := 0; i < ds.NumFiles; i++ {
		VerifyRead(ctx, cli, ds, i)
	}
	if cli.Stats().DirectPFS == 0 {
		t.Fatal("redirection not active")
	}
	c.Revive(victim)
	cli.ReviveNode(victim)
	before := cli.Stats().DirectPFS
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatal(err)
		}
	}
	if after := cli.Stats().DirectPFS; after != before {
		t.Errorf("redirection continued after recovery: %d -> %d", before, after)
	}
}
