package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ftcache"
	"repro/internal/hvac"
	"repro/internal/workload"
)

func smallDataset(files int) workload.Dataset {
	return workload.Dataset{
		Name:      "test",
		Prefix:    "test/train",
		NumFiles:  files,
		FileBytes: 256,
	}
}

func newTestCluster(t *testing.T, nodes int, strategy ftcache.StrategyKind) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes:        nodes,
		Strategy:     strategy,
		RPCTimeout:   60 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterBootAndStage(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(64)
	n, err := c.Stage(ds)
	if err != nil {
		t.Fatalf("stage: %v", err)
	}
	if n != ds.TotalBytes() {
		t.Errorf("staged %d bytes, want %d", n, ds.TotalBytes())
	}
	if objs, _ := c.PFS().Stats(); objs != 64 {
		t.Errorf("PFS objects = %d", objs)
	}
	if len(c.Nodes()) != 4 || len(c.AliveNodes()) != 4 {
		t.Error("node accounting broken")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestEndToEndReadAndVerify(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(32)
	c.Stage(ds)
	cli, _, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	// Everything was read once → each file fell back to PFS exactly once.
	reads, _, _ := c.PFS().Counters()
	if reads != int64(ds.NumFiles) {
		t.Errorf("PFS reads = %d, want %d", reads, ds.NumFiles)
	}
	// After movers drain, all files are cached somewhere.
	c.FlushMovers()
	objs, _ := c.CacheStats()
	if objs != ds.NumFiles {
		t.Errorf("cached objects = %d, want %d", objs, ds.NumFiles)
	}
}

func TestWarmCacheMatchesClientPlacement(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(48)
	c.Stage(ds)
	if err := c.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	cli, _, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	// Warm cache means zero PFS reads during the epoch.
	reads, _, _ := c.PFS().Counters()
	if reads != 0 {
		t.Errorf("PFS reads after warm = %d, want 0", reads)
	}
	st := cli.Stats()
	if st.ServedNVMe != int64(ds.NumFiles) || st.ServedPFS != 0 {
		t.Errorf("client stats = %+v", st)
	}
}

// TestStrategyNoFTAborts reproduces the paper's baseline behaviour:
// "immediate job termination upon failure".
func TestStrategyNoFTAborts(t *testing.T) {
	for _, mode := range []FailureMode{FailUnresponsive, FailKill} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			c := newTestCluster(t, 3, ftcache.KindNoFT)
			ds := smallDataset(30)
			c.Stage(ds)
			c.WarmCache(ds)
			cli, _, _ := c.NewClient()
			defer cli.Close()
			ctx := context.Background()

			if err := VerifyRead(ctx, cli, ds, 0); err != nil {
				t.Fatalf("healthy read: %v", err)
			}
			victim := c.Nodes()[1]
			if err := c.Fail(victim, mode); err != nil {
				t.Fatal(err)
			}
			// Eventually a read routed at the dead node trips the detector
			// and the job aborts.
			var aborted bool
			for i := 0; i < ds.NumFiles; i++ {
				if _, err := cli.Read(ctx, ds.FilePath(i)); errors.Is(err, hvac.ErrAborted) {
					aborted = true
					break
				}
			}
			if !aborted {
				t.Error("NoFT job did not abort after node failure")
			}
		})
	}
}

// TestStrategyPFSRedirect reproduces §IV-A: after detection, victim
// traffic goes to the PFS on every epoch, surviving placement untouched.
func TestStrategyPFSRedirect(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindPFS)
	ds := smallDataset(80)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, router, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	victim := c.Nodes()[2]
	c.Fail(victim, FailUnresponsive)
	c.PFS().ResetCounters()

	// "Epoch" 2: everything still readable.
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("epoch2 verify %d: %v", i, err)
		}
	}
	epoch2Reads, _, _ := c.PFS().Counters()
	if epoch2Reads == 0 {
		t.Fatal("expected PFS redirection traffic")
	}
	// "Epoch" 3: the same files hit PFS AGAIN — redirection never heals.
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("epoch3 verify %d: %v", i, err)
		}
	}
	epoch3Reads, _, _ := c.PFS().Counters()
	if epoch3Reads != epoch2Reads {
		t.Errorf("PFS reads: epoch2=%d epoch3=%d; redirection should repeat identically",
			epoch2Reads, epoch3Reads)
	}
	if pr, ok := router.(*ftcache.PFSRedirect); !ok || pr.FailedCount() != 1 {
		t.Errorf("router state: %T", router)
	}
}

// TestStrategyRingRecache reproduces §IV-B: one extra PFS access per lost
// file, then the cache is whole again.
func TestStrategyRingRecache(t *testing.T) {
	c := newTestCluster(t, 4, ftcache.KindNVMe)
	ds := smallDataset(80)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, router, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	// Count how many files the victim holds before failing it.
	victim := c.Nodes()[2]
	lostObjects, _ := c.Server(victim).NVMe().Stats()
	if lostObjects == 0 {
		t.Fatal("victim caches nothing; degenerate test")
	}
	c.Fail(victim, FailUnresponsive)
	c.PFS().ResetCounters()

	// Post-failure epoch: lost files are fetched from PFS exactly once
	// by their new owners and recached.
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("recache epoch verify %d: %v", i, err)
		}
	}
	reads, _, _ := c.PFS().Counters()
	if reads != int64(lostObjects) {
		t.Errorf("PFS reads = %d, want exactly the %d lost files", reads, lostObjects)
	}
	// Next epoch: zero PFS traffic — the cache healed.
	c.FlushMovers()
	c.PFS().ResetCounters()
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("healed epoch verify %d: %v", i, err)
		}
	}
	reads, _, _ = c.PFS().Counters()
	if reads != 0 {
		t.Errorf("PFS reads after heal = %d, want 0", reads)
	}
	if rr, ok := router.(*ftcache.RingRecache); !ok || rr.Ring().Len() != 3 {
		t.Errorf("ring state: %T", router)
	}
}

func TestFailUnknownAndDouble(t *testing.T) {
	c := newTestCluster(t, 2, ftcache.KindNVMe)
	if err := c.Fail("ghost", FailKill); err == nil {
		t.Error("failing unknown node should error")
	}
	n := c.Nodes()[0]
	if err := c.Fail(n, FailKill); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(n, FailKill); err != nil {
		t.Errorf("double fail should be a no-op, got %v", err)
	}
	if !c.Failed(n) || len(c.AliveNodes()) != 1 {
		t.Error("failure bookkeeping broken")
	}
	if err := c.Fail(c.Nodes()[1], FailureMode(99)); err == nil {
		t.Error("unknown mode should error")
	}
}

// TestMultipleSequentialFailures mirrors the paper's Fig 5(b) protocol of
// repeated single-node failures: the ring strategy must survive all of
// them with data intact.
func TestMultipleSequentialFailures(t *testing.T) {
	c := newTestCluster(t, 6, ftcache.KindNVMe)
	ds := smallDataset(120)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, _, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	for round := 0; round < 3; round++ {
		victim := c.AliveNodes()[round%len(c.AliveNodes())]
		c.Fail(victim, FailUnresponsive)
		for i := 0; i < ds.NumFiles; i++ {
			if err := VerifyRead(ctx, cli, ds, i); err != nil {
				t.Fatalf("round %d verify %d: %v", round, i, err)
			}
		}
		c.FlushMovers()
	}
	if len(c.AliveNodes()) != 3 {
		t.Errorf("alive = %d, want 3", len(c.AliveNodes()))
	}
}

// TestCapacityPressureEviction runs the full failover flow with NVMe
// capacity far below the working set: LRU eviction churns constantly,
// yet every read stays correct — evicted objects transparently refetch
// from the PFS via the server miss path.
func TestCapacityPressureEviction(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes:        3,
		Strategy:     ftcache.KindNVMe,
		RPCTimeout:   60 * time.Millisecond,
		TimeoutLimit: 2,
		// Each node holds only ~4 of its ~27 files at a time.
		NVMeCapacity: 4 * 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds := smallDataset(80) // 80 × 256 B, far over 3 × 1 KiB of cache
	c.Stage(ds)
	cli, _, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < ds.NumFiles; i++ {
			if err := VerifyRead(ctx, cli, ds, i); err != nil {
				t.Fatalf("epoch %d read %d: %v", epoch, i, err)
			}
		}
	}
	// Under this much pressure the PFS necessarily serves most reads...
	reads, _, _ := c.PFS().Counters()
	if reads < int64(ds.NumFiles) {
		t.Errorf("PFS reads = %d; expected heavy refetching under eviction", reads)
	}
	// ...and every node respected its capacity bound.
	evictions := int64(0)
	for _, n := range c.AliveNodes() {
		_, used := c.Server(n).NVMe().Stats()
		if used > 4*256 {
			t.Errorf("node %s over capacity: %d bytes", n, used)
		}
		_, _, ev := c.Server(n).NVMe().Counters()
		evictions += ev
	}
	if evictions == 0 {
		t.Error("expected eviction churn")
	}
	// Failover still works with a thrashing cache.
	c.Fail(c.Nodes()[0], FailUnresponsive)
	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("post-failure read %d: %v", i, err)
		}
	}
}
