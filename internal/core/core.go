// Package core assembles the FT-Cache system: it boots a fleet of HVAC
// servers over a shared PFS, hands out clients wired with one of the
// three fault-tolerance strategies, and exposes the failure-injection
// controls the experiments use. This is the library surface examples and
// integration tests program against; the root package repro re-exports
// it.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/ftcache"
	"repro/internal/ftpolicy"
	"repro/internal/hvac"
	"repro/internal/loadctl"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/workload"
)

// NodeID aliases the cluster-wide node identifier.
type NodeID = cluster.NodeID

// FailureMode selects how a node is taken down.
type FailureMode uint8

// Failure modes.
const (
	// FailUnresponsive leaves connections up but the server silent —
	// the network-timeout failure the paper's detector targets.
	FailUnresponsive FailureMode = iota
	// FailKill closes the server and all its connections outright.
	FailKill
)

// ClusterConfig configures a live in-process (or TCP) FT-Cache cluster.
type ClusterConfig struct {
	// Nodes is the number of HVAC server nodes.
	Nodes int
	// Strategy selects the fault-tolerance policy new clients get.
	Strategy ftcache.StrategyKind
	// VirtualNodes per physical node for the ring strategy; <= 0 selects
	// the paper's 100.
	VirtualNodes int
	// RPCTimeout is the client TTL per request; <= 0 selects 500ms.
	RPCTimeout time.Duration
	// TimeoutLimit is the detector threshold; <= 0 selects the default.
	TimeoutLimit int
	// NVMeCapacity bounds each node's cache; 0 = unbounded.
	NVMeCapacity int64
	// RAMCapacity, when > 0, gives each server an in-memory hot-object
	// tier of this many bytes above its NVMe cache (see
	// hvac.ServerConfig.RAMCapacity). 0 disables the tier.
	RAMCapacity int64
	// Replication, when > 1 with the ring strategy, keeps that many
	// cached copies of every file on distinct ring owners (extension:
	// failover without any PFS traffic, at Replication× cache cost).
	Replication int
	// Network defaults to a fresh in-process network.
	Network rpc.Network
	// LoadControl, when non-nil, enables the hot-object load-control
	// subsystem on every client this cluster hands out (see loadctl).
	LoadControl *loadctl.Config
	// AdmissionLimit enables server-side admission control: each server
	// serves at most this many reads concurrently, queues AdmissionQueue
	// more, and sheds the rest with an explicit overload status.
	// <= 0 disables shedding.
	AdmissionLimit int
	// AdmissionQueue is the per-server wait-line depth; < 0 selects
	// AdmissionLimit.
	AdmissionQueue int
	// ReadDelay simulates per-read device service time on every server,
	// giving nodes finite capacity (see hvac.ServerConfig.ReadDelay).
	ReadDelay time.Duration
	// Retry, when non-nil, gives every client the bounded-backoff retry
	// policy for connection-class RPC failures (see rpc.RetryPolicy).
	Retry *rpc.RetryPolicy
	// Ingest, when non-nil, enables the batched async ingest pipeline on
	// every client this cluster hands out (see hvac.IngestConfig).
	Ingest *hvac.IngestConfig
}

// Cluster is a running FT-Cache deployment.
type Cluster struct {
	cfg     ClusterConfig
	network rpc.Network
	pfs     *storage.PFS
	servers map[NodeID]*hvac.Server
	nodes   []NodeID
	killed  map[NodeID]bool
}

// NewCluster boots cfg.Nodes HVAC servers over a fresh PFS.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("core: Nodes must be positive")
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 500 * time.Millisecond
	}
	if cfg.Strategy == "" {
		cfg.Strategy = ftcache.KindNVMe
	}
	network := cfg.Network
	if network == nil {
		network = rpc.NewInprocNetwork()
	}
	c := &Cluster{
		cfg:     cfg,
		network: network,
		pfs:     storage.NewPFS(),
		servers: make(map[NodeID]*hvac.Server, cfg.Nodes),
		killed:  make(map[NodeID]bool),
	}
	for i := 0; i < cfg.Nodes; i++ {
		node := NodeID(fmt.Sprintf("node-%04d", i))
		srv := hvac.NewServer(hvac.ServerConfig{
			Node:           node,
			NVMeCapacity:   cfg.NVMeCapacity,
			RAMCapacity:    cfg.RAMCapacity,
			AdmissionLimit: cfg.AdmissionLimit,
			AdmissionQueue: cfg.AdmissionQueue,
			ReadDelay:      cfg.ReadDelay,
		}, c.pfs)
		lis, err := network.Listen(string(node))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: listen %s: %w", node, err)
		}
		go srv.Serve(lis)
		c.servers[node] = srv
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Nodes returns all node IDs (including killed ones) in boot order.
func (c *Cluster) Nodes() []NodeID { return append([]NodeID(nil), c.nodes...) }

// PFS returns the shared parallel file system.
func (c *Cluster) PFS() *storage.PFS { return c.pfs }

// Server returns a node's server handle (nil for unknown nodes).
func (c *Cluster) Server(n NodeID) *hvac.Server { return c.servers[n] }

// Stage loads a dataset onto the PFS (the pre-run staging step).
func (c *Cluster) Stage(ds workload.Dataset) (int64, error) { return ds.Stage(c.pfs) }

// NewClient creates a client with its own strategy instance and failure
// detector — mirroring the paper, where every rank detects and reroutes
// independently.
func (c *Cluster) NewClient() (*hvac.Client, hvac.Router, error) {
	return c.NewClientNet(c.network)
}

// NewClientNet is NewClient over an explicit network view — the hook
// chaos testing uses to give each client its own per-source view of the
// fault-injected network while servers listen on the shared inner one.
func (c *Cluster) NewClientNet(network rpc.Network) (*hvac.Client, hvac.Router, error) {
	router := ftcache.NewRouter(c.cfg.Strategy, c.Nodes(), c.cfg.VirtualNodes)
	endpoints := make(map[NodeID]string, len(c.nodes))
	for _, n := range c.nodes {
		endpoints[n] = string(n)
	}
	cli, err := hvac.NewClient(hvac.ClientConfig{
		Endpoints:         endpoints,
		Network:           network,
		Router:            router,
		PFS:               c.pfs,
		RPCTimeout:        c.cfg.RPCTimeout,
		TimeoutLimit:      c.cfg.TimeoutLimit,
		ReplicationFactor: c.cfg.Replication,
		LoadControl:       c.cfg.LoadControl,
		Retry:             c.cfg.Retry,
		Ingest:            c.cfg.Ingest,
	})
	if err != nil {
		return nil, nil, err
	}
	return cli, router, nil
}

// NewAdaptiveClientNet is NewClientNet for adaptive-strategy clusters:
// it returns the client together with its Switchable router and, when
// ctl is non-nil, attaches both to the policy controller so the
// client's detector feeds the control loop and committed decisions
// swap this client's routing. The cluster must have been built with
// Strategy == ftcache.KindAdaptive.
func (c *Cluster) NewAdaptiveClientNet(network rpc.Network, ctl *ftpolicy.Controller) (*hvac.Client, *ftcache.Switchable, error) {
	cli, router, err := c.NewClientNet(network)
	if err != nil {
		return nil, nil, err
	}
	sw, ok := router.(*ftcache.Switchable)
	if !ok {
		cli.Close()
		return nil, nil, fmt.Errorf("core: cluster strategy %q is not adaptive", c.cfg.Strategy)
	}
	if ctl != nil {
		ctl.Attach(cli, sw)
	}
	return cli, sw, nil
}

// PolicyProbe returns a PFS-latency probe for the adaptive policy
// controller: one timed Get of a staged path per tick. The probe sees
// the same injected contention delay every real PFS consumer does.
func (c *Cluster) PolicyProbe(path string) func() (time.Duration, bool) {
	return func() (time.Duration, bool) {
		t0 := time.Now()
		_, err := c.pfs.Get(path)
		return time.Since(t0), err == nil
	}
}

// Fail takes node down in the given mode. Unknown nodes are an error;
// failing a node twice is a no-op.
func (c *Cluster) Fail(node NodeID, mode FailureMode) error {
	srv, ok := c.servers[node]
	if !ok {
		return fmt.Errorf("core: unknown node %s", node)
	}
	if c.killed[node] {
		return nil
	}
	c.killed[node] = true
	switch mode {
	case FailUnresponsive:
		srv.SetUnresponsive(true)
	case FailKill:
		srv.Close()
	default:
		return fmt.Errorf("core: unknown failure mode %d", mode)
	}
	return nil
}

// Revive brings a failed node back (elastic scale-up): an unresponsive
// server resumes answering with its cache intact; a killed server is
// replaced by a fresh daemon with an empty cache, as a rebooted node
// would be. Clients learn about the recovery via Client.ReviveNode.
func (c *Cluster) Revive(node NodeID) error {
	srv, ok := c.servers[node]
	if !ok {
		return fmt.Errorf("core: unknown node %s", node)
	}
	if !c.killed[node] {
		return nil
	}
	if srv.Unresponsive() {
		srv.SetUnresponsive(false)
	} else {
		// Hard-killed: boot a replacement daemon under the same identity.
		// The replacement gets the same RAMCapacity — a rebooted node's
		// RAM tier starts empty (construction guarantees that) but must
		// not come back silently disabled.
		fresh := hvac.NewServer(hvac.ServerConfig{
			Node:           node,
			NVMeCapacity:   c.cfg.NVMeCapacity,
			RAMCapacity:    c.cfg.RAMCapacity,
			AdmissionLimit: c.cfg.AdmissionLimit,
			AdmissionQueue: c.cfg.AdmissionQueue,
			ReadDelay:      c.cfg.ReadDelay,
		}, c.pfs)
		lis, err := c.network.Listen(string(node))
		if err != nil {
			return fmt.Errorf("core: relisten %s: %w", node, err)
		}
		go fresh.Serve(lis)
		c.servers[node] = fresh
	}
	delete(c.killed, node)
	return nil
}

// Failed reports whether node has been taken down.
func (c *Cluster) Failed(node NodeID) bool { return c.killed[node] }

// AliveNodes returns nodes not taken down, in boot order.
func (c *Cluster) AliveNodes() []NodeID {
	out := make([]NodeID, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !c.killed[n] {
			out = append(out, n)
		}
	}
	return out
}

// FlushMovers waits for every live server's data mover to drain, making
// async recaching deterministic for tests and experiments.
func (c *Cluster) FlushMovers() {
	for n, s := range c.servers {
		if !c.killed[n] {
			s.Mover().Flush()
		}
	}
}

// WarmCache places every dataset file on its healthy-state owner's NVMe
// (and, with Replication > 1, on the secondary owners too), emulating a
// completed first epoch ("all data is cached before the failure event",
// §V-A.3). It uses a fresh strategy instance so the placement matches
// what clients will compute.
func (c *Cluster) WarmCache(ds workload.Dataset) error {
	router := ftcache.NewRouter(c.cfg.Strategy, c.Nodes(), c.cfg.VirtualNodes)
	replicator, _ := router.(hvac.Replicator)
	for i := 0; i < ds.NumFiles; i++ {
		path := ds.FilePath(i)
		var targets []NodeID
		if c.cfg.Replication > 1 && replicator != nil {
			targets = replicator.Replicas(path, c.cfg.Replication)
		} else {
			d := router.Route(path)
			if d.Kind != hvac.RouteNode {
				return fmt.Errorf("core: warm route for %s gave kind %d", path, d.Kind)
			}
			targets = []NodeID{d.Node}
		}
		body := ds.SampleContent(i)
		for _, node := range targets {
			srv := c.servers[node]
			if srv == nil {
				return fmt.Errorf("core: warm route to unknown node %s", node)
			}
			if err := srv.NVMe().Put(path, body); err != nil {
				return fmt.Errorf("core: warm %s: %w", path, err)
			}
		}
	}
	return nil
}

// CacheStats aggregates NVMe object counts across live servers.
func (c *Cluster) CacheStats() (objects int, bytes int64) {
	for n, s := range c.servers {
		if c.killed[n] {
			continue
		}
		o, b := s.NVMe().Stats()
		objects += o
		bytes += b
	}
	return objects, bytes
}

// VerifyRead is a convenience for smoke tests: read path via cli and
// check the content against the dataset generator.
func VerifyRead(ctx context.Context, cli *hvac.Client, ds workload.Dataset, i int) error {
	path := ds.FilePath(i)
	got, err := cli.Read(ctx, path)
	if err != nil {
		return err
	}
	want := ds.SampleContent(i)
	if len(got) != len(want) {
		return fmt.Errorf("core: %s length %d, want %d", path, len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			return fmt.Errorf("core: %s corrupt at byte %d", path, j)
		}
	}
	return nil
}

// Close shuts every server down (idempotent, including servers already
// killed by fault injection).
func (c *Cluster) Close() {
	for _, s := range c.servers {
		s.Close()
	}
}
