package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ftcache"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestFailureEventOrdering kills a node in a live in-process cluster and
// asserts the telemetry trace records the paper's failure pipeline in
// causal order: node-suspected → node-declared-dead → recache-planned →
// recache-file-done.
func TestFailureEventOrdering(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes:        3,
		Strategy:     ftcache.KindNVMe,
		RPCTimeout:   40 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ds := workload.Dataset{Name: "evt", Prefix: "evt", NumFiles: 64, FileBytes: 512}
	if _, err := c.Stage(ds); err != nil {
		t.Fatal(err)
	}
	if err := c.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	c.FlushMovers()

	cli, router, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ring := router.(*ftcache.RingRecache).Ring()

	// Pick a victim node and a file it owns, so one read exercises the
	// whole pipeline: two timeouts → declaration → ring removal → re-route
	// to the successor → miss → PFS fetch → cache fill.
	victim := c.Nodes()[0]
	var lostFile string
	for i := 0; i < ds.NumFiles; i++ {
		if owner, ok := ring.Owner(ds.FilePath(i)); ok && owner == victim {
			lostFile = ds.FilePath(i)
			break
		}
	}
	if lostFile == "" {
		t.Fatalf("no file owned by %s", victim)
	}

	since := telemetry.Default().Trace().Seq()
	if err := c.Fail(victim, FailUnresponsive); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read(context.Background(), lostFile); err != nil {
		t.Fatalf("post-failure read: %v", err)
	}
	c.FlushMovers()

	events := telemetry.Default().Trace().Since(since)
	seqOf := func(typ telemetry.EventType) uint64 {
		for _, e := range events {
			if e.Type == typ && (e.Node == string(victim) || typ == telemetry.EventRecacheFileDone) {
				return e.Seq
			}
		}
		t.Fatalf("no %s event for %s in trace (%d events)", typ, victim, len(events))
		return 0
	}
	suspected := seqOf(telemetry.EventNodeSuspected)
	dead := seqOf(telemetry.EventNodeDead)
	planned := seqOf(telemetry.EventRecachePlanned)
	done := seqOf(telemetry.EventRecacheFileDone)
	if !(suspected < dead && dead < planned && planned < done) {
		t.Errorf("event order violated: suspected=%d dead=%d planned=%d done=%d",
			suspected, dead, planned, done)
	}

	// The same trace must be visible over the debug endpoint, and the ring
	// section must show the shrunken membership.
	srv := httptest.NewServer(telemetry.Handler(telemetry.Default()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/ftcache?events=256")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state struct {
		Sections map[string]json.RawMessage `json:"sections"`
		Events   []struct {
			Type string `json:"type"`
			Node string `json:"node"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	var ringSec struct {
		Members []string `json:"members"`
	}
	if err := json.Unmarshal(state.Sections["ring"], &ringSec); err != nil {
		t.Fatalf("ring section: %v", err)
	}
	if len(ringSec.Members) != 2 {
		t.Errorf("ring members after failure = %v, want 2 survivors", ringSec.Members)
	}
	for _, m := range ringSec.Members {
		if m == string(victim) {
			t.Errorf("victim %s still in debug ring membership", victim)
		}
	}
	var sawDead bool
	for _, e := range state.Events {
		if e.Type == "node-declared-dead" && e.Node == string(victim) {
			sawDead = true
		}
	}
	if !sawDead {
		t.Error("debug endpoint trace missing node-declared-dead for victim")
	}

	// /metrics must expose the headline counters the issue calls out.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"ftc_client_served_nvme_total",
		"ftc_server_pfs_fallbacks_total",
		"ftc_detect_declared_dead_total",
		"ftc_rpc_roundtrip_seconds_count",
		"ftc_ring_snapshot_swaps_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
