package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/ftcache"
)

func newReplCluster(t *testing.T, nodes, replication int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes:        nodes,
		Strategy:     ftcache.KindNVMe,
		Replication:  replication,
		RPCTimeout:   60 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestReplicationZeroPFSFailover is the extension's headline: with two
// cached copies per file, a primary failure is absorbed with ZERO PFS
// reads — the ring's new owner for every lost file is exactly the node
// already holding the second replica.
func TestReplicationZeroPFSFailover(t *testing.T) {
	c := newReplCluster(t, 5, 2)
	ds := smallDataset(100)
	c.Stage(ds)
	if err := c.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	cli, _, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	victim := c.Nodes()[2]
	if objs, _ := c.Server(victim).NVMe().Stats(); objs == 0 {
		t.Fatal("victim holds nothing; degenerate")
	}
	c.Fail(victim, FailUnresponsive)
	c.PFS().ResetCounters()

	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatalf("post-failure read %d: %v", i, err)
		}
	}
	reads, _, _ := c.PFS().Counters()
	if reads != 0 {
		t.Errorf("PFS reads after failover = %d, want 0 (replication)", reads)
	}
}

// TestReplicationWarmPlacesRCopies checks the warm path puts every file
// on exactly R distinct nodes.
func TestReplicationWarmPlacesRCopies(t *testing.T) {
	const files, r = 60, 3
	c := newReplCluster(t, 6, r)
	ds := smallDataset(files)
	c.Stage(ds)
	if err := c.WarmCache(ds); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range c.Nodes() {
		objs, _ := c.Server(n).NVMe().Stats()
		total += objs
	}
	if total != files*r {
		t.Errorf("cached copies = %d, want %d", total, files*r)
	}
}

// TestReplicationOnMissPath verifies client-driven replication: a cold
// read (PFS fallback) fans the object out to the secondary owners.
func TestReplicationOnMissPath(t *testing.T) {
	c := newReplCluster(t, 4, 2)
	ds := smallDataset(40)
	c.Stage(ds)
	cli, router, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	for i := 0; i < ds.NumFiles; i++ {
		if err := VerifyRead(ctx, cli, ds, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	c.FlushMovers()

	if pushes := cli.Stats().ReplicaPushes; pushes != int64(ds.NumFiles) {
		t.Errorf("replica pushes = %d, want %d", pushes, ds.NumFiles)
	}
	// Every file must now live on its two ring owners.
	repl := router.(*ftcache.RingRecache)
	for i := 0; i < ds.NumFiles; i++ {
		path := ds.FilePath(i)
		owners := repl.Replicas(path, 2)
		if len(owners) != 2 {
			t.Fatalf("owners of %s = %v", path, owners)
		}
		for _, o := range owners {
			if !c.Server(o).NVMe().Has(path) {
				t.Errorf("%s missing replica on %s", path, o)
			}
		}
	}
}

// TestReplicationSurvivesSequentialFailures: R=3 tolerates two failures
// of a file's owners back-to-back without PFS traffic.
func TestReplicationSurvivesSequentialFailures(t *testing.T) {
	c := newReplCluster(t, 6, 3)
	ds := smallDataset(120)
	c.Stage(ds)
	c.WarmCache(ds)
	cli, _, _ := c.NewClient()
	defer cli.Close()
	ctx := context.Background()

	c.PFS().ResetCounters()
	for round := 0; round < 2; round++ {
		victim := c.AliveNodes()[0]
		c.Fail(victim, FailUnresponsive)
		for i := 0; i < ds.NumFiles; i++ {
			if err := VerifyRead(ctx, cli, ds, i); err != nil {
				t.Fatalf("round %d read %d: %v", round, i, err)
			}
		}
	}
	reads, _, _ := c.PFS().Counters()
	if reads != 0 {
		t.Errorf("PFS reads across two failovers = %d, want 0 with R=3", reads)
	}
}

func TestReplicationRequiresReplicatorRouter(t *testing.T) {
	// NoFT/PFSRedirect don't implement Replicator; the client must
	// reject the configuration instead of silently not replicating.
	c, err := NewCluster(ClusterConfig{
		Nodes:       3,
		Strategy:    ftcache.KindPFS,
		Replication: 2,
		RPCTimeout:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.NewClient(); err == nil {
		t.Error("ReplicationFactor with non-Replicator router should fail")
	}
}
