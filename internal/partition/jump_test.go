package partition

import (
	"testing"
)

func TestJumpHashReference(t *testing.T) {
	// Structural properties of the algorithm itself.
	for _, buckets := range []int{1, 2, 10, 1000} {
		for key := uint64(0); key < 200; key++ {
			b := jumpHash(key, buckets)
			if b < 0 || b >= buckets {
				t.Fatalf("jumpHash(%d,%d) = %d out of range", key, buckets, b)
			}
		}
	}
	// Single bucket: everything maps to 0.
	for key := uint64(0); key < 50; key++ {
		if jumpHash(key, 1) != 0 {
			t.Fatal("single bucket must absorb all keys")
		}
	}
}

func TestJumpHashMinimalMovementOnGrowth(t *testing.T) {
	// The defining jump-hash property: growing n → n+1 moves ≈ 1/(n+1)
	// of keys, and keys only move TO the new bucket.
	const n, keys = 16, 20000
	moved := 0
	for k := uint64(0); k < keys; k++ {
		before := jumpHash(k, n)
		after := jumpHash(k, n+1)
		if before != after {
			moved++
			if after != n {
				t.Fatalf("key %d moved to old bucket %d", k, after)
			}
		}
	}
	frac := float64(moved) / keys
	want := 1.0 / float64(n+1)
	if frac < want*0.7 || frac > want*1.3 {
		t.Errorf("moved fraction = %.4f, want ≈ %.4f", frac, want)
	}
}

func TestJumpPartitionerBasics(t *testing.T) {
	p := NewJump(nodes(8))
	ks := keys(500)
	live := map[NodeID]bool{}
	for _, n := range p.Live() {
		live[n] = true
	}
	for _, k := range ks {
		o, ok := p.Owner(k)
		if !ok || !live[o] {
			t.Fatalf("owner(%q) = %q, %v", k, o, ok)
		}
	}
	p.Fail(p.Live()[3])
	if len(p.Live()) != 7 {
		t.Fatalf("live = %d", len(p.Live()))
	}
	for _, k := range ks {
		if o, ok := p.Owner(k); !ok || o == "" {
			t.Fatalf("post-failure owner(%q) = %q", k, o)
		}
	}
	// Drain to zero.
	for len(p.Live()) > 0 {
		p.Fail(p.Live()[0])
	}
	if _, ok := p.Owner("k"); ok {
		t.Error("empty partitioner should report no owner")
	}
}

// TestJumpArbitraryRemovalMovesManyKeys documents why FT-Cache uses a
// ring instead of jump hash: failing a middle node renumbers buckets and
// relocates keys that were on healthy nodes.
func TestJumpArbitraryRemovalMovesManyKeys(t *testing.T) {
	p := NewJump(nodes(16))
	ks := keys(4000)
	rep := MeasureFailure(p, ks, p.Live()[2]) // early-index victim
	if rep.Collateral == 0 {
		t.Error("jump hash should show collateral movement on middle-node failure")
	}
	// Ring comparison: zero collateral by construction.
	ring := NewRing(nodes(16), 100)
	rrep := MeasureFailure(ring, ks, ring.Live()[2])
	if rrep.Collateral != 0 {
		t.Errorf("ring collateral = %d", rrep.Collateral)
	}
	if rep.Moved() <= rrep.Moved() {
		t.Errorf("jump should move more keys than ring: %d vs %d", rep.Moved(), rrep.Moved())
	}
}
