// Package partition implements the data-placement strategies the paper
// compares when motivating the hash ring (§IV-B):
//
//   - Modulo: HVAC's original static hash partitioning — hash(path) mod N
//     over the live node list. Correct and balanced, but any membership
//     change re-maps almost every key ("not only is the lost data
//     reassigned to other nodes, but well-cached data is also relocated").
//   - MultiHash: keep the original slot table and, when the first hash
//     lands on a dead node, retry with successive derived hashes. Moves
//     only the failed node's keys but degrades under repeated failures.
//   - Range: contiguous key-range assignment. On failure either the
//     successor absorbs the whole range (minimal movement, poor balance)
//     or all ranges are re-split (balanced, huge movement).
//   - Ring: the consistent-hash ring (package hashring) — minimal
//     movement and balanced via virtual nodes; the paper's choice.
//
// All strategies implement Partitioner so the movement experiment in
// movement.go can compare them head-to-head.
package partition

import (
	"sort"
	"sync"

	"repro/internal/hashring"
	"repro/internal/xhash"
)

// NodeID aliases the cluster-wide node identifier.
type NodeID = hashring.NodeID

// Partitioner maps keys to owning nodes under a mutable membership.
type Partitioner interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Owner returns the node responsible for key; ok=false if no live
	// nodes remain.
	Owner(key string) (NodeID, bool)
	// Fail marks node dead, triggering the strategy's reassignment rule.
	Fail(node NodeID)
	// Live returns the live nodes in deterministic order.
	Live() []NodeID
}

// Modulo is HVAC's original static hash partitioner: FNV-1a of the path,
// modulo the number of live nodes, indexed into the sorted live list.
type Modulo struct {
	mu   sync.RWMutex
	live []NodeID // sorted
}

// NewModulo creates a Modulo partitioner over nodes.
func NewModulo(nodes []NodeID) *Modulo {
	m := &Modulo{live: append([]NodeID(nil), nodes...)}
	sort.Slice(m.live, func(i, j int) bool { return m.live[i] < m.live[j] })
	return m
}

// Name implements Partitioner.
func (m *Modulo) Name() string { return "modulo" }

// Owner implements Partitioner.
func (m *Modulo) Owner(key string) (NodeID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.live) == 0 {
		return "", false
	}
	h := xhash.FNV1aString(key)
	return m.live[h%uint64(len(m.live))], true
}

// Fail implements Partitioner. Removing a node changes len(live) and so
// re-maps nearly every key — the behaviour the paper calls out as the
// core deficiency of static partitioning.
func (m *Modulo) Fail(node NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, n := range m.live {
		if n == node {
			m.live = append(m.live[:i], m.live[i+1:]...)
			return
		}
	}
}

// Live implements Partitioner.
func (m *Modulo) Live() []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]NodeID(nil), m.live...)
}

// MultiHash keeps the original slot table fixed and probes derived hash
// functions until it finds a live slot. The i-th hash of a key is a
// splitmix64 re-mix of the base hash, matching the "employing multiple
// hash functions" alternative in §IV-B.
type MultiHash struct {
	mu    sync.RWMutex
	slots []NodeID // original membership; never shrinks
	dead  map[NodeID]bool
	nDead int
}

// NewMultiHash creates a MultiHash partitioner over nodes.
func NewMultiHash(nodes []NodeID) *MultiHash {
	s := append([]NodeID(nil), nodes...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &MultiHash{slots: s, dead: make(map[NodeID]bool)}
}

// Name implements Partitioner.
func (m *MultiHash) Name() string { return "multihash" }

// Owner implements Partitioner.
func (m *MultiHash) Owner(key string) (NodeID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.nDead >= len(m.slots) {
		return "", false
	}
	h := xhash.XXH64String(key, 0)
	// Bounded probe sequence; with d dead of s slots the expected probe
	// count is s/(s-d), so 64 tries virtually never falls through.
	for i := 0; i < 64; i++ {
		n := m.slots[h%uint64(len(m.slots))]
		if !m.dead[n] {
			return n, true
		}
		h = xhash.Mix64(h + 0x9E3779B97F4A7C15) // next hash function
	}
	// Deterministic fallback: first live slot clockwise of the last probe.
	start := int(h % uint64(len(m.slots)))
	for i := 0; i < len(m.slots); i++ {
		n := m.slots[(start+i)%len(m.slots)]
		if !m.dead[n] {
			return n, true
		}
	}
	return "", false
}

// Fail implements Partitioner.
func (m *MultiHash) Fail(node NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.slots {
		if n == node && !m.dead[n] {
			m.dead[n] = true
			m.nDead++
			return
		}
	}
}

// Live implements Partitioner.
func (m *MultiHash) Live() []NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]NodeID, 0, len(m.slots)-m.nDead)
	for _, n := range m.slots {
		if !m.dead[n] {
			out = append(out, n)
		}
	}
	return out
}

// Range assigns contiguous hash ranges to nodes (§IV-B's range
// partitioning, citing Özsu & Valduriez). Two failure policies:
// successor absorption (minimal movement, imbalanced) or full re-split
// (balanced, extensive movement).
type Range struct {
	mu sync.RWMutex
	// bounds[i] is the exclusive upper bound of owners[i]'s range;
	// bounds[len-1] is implicitly 2^64 (checked via < on uint64).
	owners    []NodeID
	bounds    []uint64
	rebalance bool
}

// NewRange creates a Range partitioner with equal ranges over nodes.
// If rebalanceOnFailure is true, node failure re-splits the space evenly
// across survivors; otherwise the failed range merges into its successor.
func NewRange(nodes []NodeID, rebalanceOnFailure bool) *Range {
	r := &Range{rebalance: rebalanceOnFailure}
	sorted := append([]NodeID(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	r.split(sorted)
	return r
}

// split assigns equal ranges over the given nodes.
func (r *Range) split(nodes []NodeID) {
	n := len(nodes)
	r.owners = append(r.owners[:0], nodes...)
	r.bounds = r.bounds[:0]
	if n == 0 {
		return
	}
	width := ^uint64(0)/uint64(n) + 1 // ceil(2^64 / n), wraps to 0 when n==1
	for i := 1; i <= n; i++ {
		if i == n {
			r.bounds = append(r.bounds, ^uint64(0))
		} else {
			r.bounds = append(r.bounds, uint64(i)*width-1)
		}
	}
}

// Name implements Partitioner.
func (r *Range) Name() string {
	if r.rebalance {
		return "range-rebalance"
	}
	return "range-absorb"
}

// Owner implements Partitioner.
func (r *Range) Owner(key string) (NodeID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.owners) == 0 {
		return "", false
	}
	h := xhash.XXH64String(key, 0)
	i := sort.Search(len(r.bounds), func(i int) bool { return r.bounds[i] >= h })
	return r.owners[i], true
}

// Fail implements Partitioner.
func (r *Range) Fail(node NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := -1
	for i, n := range r.owners {
		if n == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	if r.rebalance {
		survivors := append(append([]NodeID(nil), r.owners[:idx]...), r.owners[idx+1:]...)
		r.split(survivors)
		return
	}
	// Successor absorption: the next range's owner extends downward; the
	// last range merges into its predecessor.
	if idx == len(r.owners)-1 && idx > 0 {
		r.owners = r.owners[:idx]
		r.bounds = r.bounds[:idx]
		r.bounds[idx-1] = ^uint64(0)
		return
	}
	r.owners = append(r.owners[:idx], r.owners[idx+1:]...)
	r.bounds = append(r.bounds[:idx], r.bounds[idx+1:]...)
}

// Live implements Partitioner.
func (r *Range) Live() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]NodeID(nil), r.owners...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ring adapts hashring.Ring to the Partitioner interface.
type Ring struct {
	ring *hashring.Ring
}

// NewRing creates a ring partitioner with the given virtual-node count.
func NewRing(nodes []NodeID, virtualNodes int) *Ring {
	return &Ring{ring: hashring.NewWithNodes(
		hashring.Config{VirtualNodes: virtualNodes}, nodes)}
}

// Name implements Partitioner.
func (r *Ring) Name() string { return "hashring" }

// Owner implements Partitioner.
func (r *Ring) Owner(key string) (NodeID, bool) { return r.ring.Owner(key) }

// Fail implements Partitioner.
func (r *Ring) Fail(node NodeID) { r.ring.Remove(node) }

// Live implements Partitioner.
func (r *Ring) Live() []NodeID { return r.ring.Nodes() }

// Underlying exposes the wrapped hash ring for analysis helpers.
func (r *Ring) Underlying() *hashring.Ring { return r.ring }
