package partition

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func nodes(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(fmt.Sprintf("node-%04d", i))
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
	}
	return out
}

func strategies(n int) []Partitioner {
	ns := nodes(n)
	return []Partitioner{
		NewModulo(ns),
		NewMultiHash(ns),
		NewRange(ns, false),
		NewRange(ns, true),
		NewRing(ns, 100),
	}
}

func TestAllStrategiesMapEveryKeyToLiveNode(t *testing.T) {
	ks := keys(500)
	for _, p := range strategies(16) {
		live := map[NodeID]bool{}
		for _, n := range p.Live() {
			live[n] = true
		}
		for _, k := range ks {
			owner, ok := p.Owner(k)
			if !ok {
				t.Fatalf("%s: no owner for %q", p.Name(), k)
			}
			if !live[owner] {
				t.Fatalf("%s: owner %q of %q is not live", p.Name(), owner, k)
			}
		}
	}
}

func TestOwnerDeterministic(t *testing.T) {
	ks := keys(100)
	for _, p := range strategies(8) {
		for _, k := range ks {
			a, _ := p.Owner(k)
			b, _ := p.Owner(k)
			if a != b {
				t.Fatalf("%s: nondeterministic owner for %q", p.Name(), k)
			}
		}
	}
}

func TestFailureKeepsMappingToSurvivors(t *testing.T) {
	ks := keys(500)
	for _, p := range strategies(16) {
		victim := p.Live()[4]
		p.Fail(victim)
		if len(p.Live()) != 15 {
			t.Fatalf("%s: live=%d after one failure", p.Name(), len(p.Live()))
		}
		for _, k := range ks {
			owner, ok := p.Owner(k)
			if !ok || owner == victim {
				t.Fatalf("%s: key %q -> (%q,%v) after failing %q", p.Name(), k, owner, ok, victim)
			}
		}
	}
}

func TestRepeatedFailuresDownToOne(t *testing.T) {
	ks := keys(200)
	for _, p := range strategies(8) {
		for len(p.Live()) > 1 {
			p.Fail(p.Live()[0])
		}
		last := p.Live()[0]
		for _, k := range ks {
			owner, ok := p.Owner(k)
			if !ok || owner != last {
				t.Fatalf("%s: with one survivor %q, key %q -> (%q,%v)", p.Name(), last, k, owner, ok)
			}
		}
		p.Fail(last)
		if _, ok := p.Owner(ks[0]); ok {
			t.Fatalf("%s: owner reported with zero live nodes", p.Name())
		}
	}
}

func TestFailUnknownNodeIsNoop(t *testing.T) {
	ks := keys(100)
	for _, p := range strategies(6) {
		before := map[string]NodeID{}
		for _, k := range ks {
			before[k], _ = p.Owner(k)
		}
		p.Fail("ghost")
		if len(p.Live()) != 6 {
			t.Fatalf("%s: live count changed on ghost failure", p.Name())
		}
		for _, k := range ks {
			if o, _ := p.Owner(k); o != before[k] {
				t.Fatalf("%s: ghost failure moved key %q", p.Name(), k)
			}
		}
	}
}

// TestMovementComparison is the quantitative version of §IV-B: the ring
// and the absorb-mode range partitioner move only the failed node's keys;
// modulo and rebalance-mode range relocate large fractions of data cached
// on healthy nodes.
func TestMovementComparison(t *testing.T) {
	const n = 32
	ks := keys(4000)
	perStrategy := map[string]MovementReport{}
	for _, p := range strategies(n) {
		victim := p.Live()[n/2]
		perStrategy[p.Name()] = MeasureFailure(p, ks, victim)
	}

	for _, name := range []string{"hashring", "range-absorb", "multihash"} {
		if c := perStrategy[name].Collateral; c != 0 {
			t.Errorf("%s: expected zero collateral movement, got %d", name, c)
		}
	}
	if c := perStrategy["modulo"].Collateral; c < len(ks)/2 {
		t.Errorf("modulo: expected massive collateral movement, got %d/%d", c, len(ks))
	}
	if c := perStrategy["range-rebalance"].Collateral; c == 0 {
		t.Error("range-rebalance: expected non-zero collateral movement")
	}
	// Everyone loses the failed node's keys; the counts differ per
	// strategy only because placement differs, but all must be positive.
	for name, rep := range perStrategy {
		if rep.FromFailed == 0 {
			t.Errorf("%s: victim owned no keys — placement is degenerate", name)
		}
	}
}

// TestRingMovementIsTheoreticalMinimum: the ring's total movement equals
// exactly the failed node's key count — nothing more can be saved.
func TestRingMovementIsTheoreticalMinimum(t *testing.T) {
	p := NewRing(nodes(16), 100)
	ks := keys(2000)
	victim := p.Live()[7]
	ownedByVictim := 0
	for _, k := range ks {
		if o, _ := p.Owner(k); o == victim {
			ownedByVictim++
		}
	}
	rep := MeasureFailure(p, ks, victim)
	if rep.Moved() != ownedByVictim {
		t.Errorf("ring moved %d keys, theoretical minimum is %d", rep.Moved(), ownedByVictim)
	}
	if rep.MovedFraction() > 2.0/16.0 {
		t.Errorf("ring moved fraction %.3f suspiciously high for 16 nodes", rep.MovedFraction())
	}
}

func TestRangeAbsorbImbalance(t *testing.T) {
	// After successor absorption, one survivor owns a double range: its
	// load should be roughly twice the average — the imbalance the paper
	// cites as range partitioning's weakness.
	p := NewRange(nodes(16), false)
	ks := keys(8000)
	MeasureFailure(p, ks, p.Live()[5])
	counts := LoadCounts(p, ks)
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	avg := float64(len(ks)) / 15.0
	if float64(maxC) < 1.6*avg {
		t.Errorf("expected ~2x load on absorbing node, max=%d avg=%.0f", maxC, avg)
	}
}

func TestRangeRebalanceStaysBalanced(t *testing.T) {
	p := NewRange(nodes(16), true)
	ks := keys(8000)
	MeasureFailure(p, ks, p.Live()[5])
	counts := LoadCounts(p, ks)
	vals := make([]float64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, float64(c))
	}
	if cv := stats.CoeffVar(vals); cv > 0.2 {
		t.Errorf("rebalance-mode range should stay balanced, CV=%.3f", cv)
	}
}

func TestMultiHashRepeatedFailures(t *testing.T) {
	p := NewMultiHash(nodes(12))
	ks := keys(1000)
	// Fail half the cluster one at a time; mapping must stay valid and
	// only the failing nodes' keys may move at each step.
	for i := 0; i < 6; i++ {
		victim := p.Live()[0]
		rep := MeasureFailure(p, ks, victim)
		if rep.Collateral != 0 {
			t.Fatalf("multihash collateral movement %d at failure %d", rep.Collateral, i)
		}
	}
	if len(p.Live()) != 6 {
		t.Fatalf("live=%d", len(p.Live()))
	}
}

func TestModuloMatchesHVACFormula(t *testing.T) {
	// Spot-check that Modulo implements hash(path) mod N over the sorted
	// node list, which is what the original HVAC client computed.
	ns := nodes(4)
	p := NewModulo(ns)
	for _, k := range keys(50) {
		owner, _ := p.Owner(k)
		found := false
		for _, n := range ns {
			if n == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q not in node set", owner)
		}
	}
}

func TestBalanceAcrossStrategies(t *testing.T) {
	ks := keys(16000)
	for _, p := range strategies(16) {
		counts := LoadCounts(p, ks)
		vals := make([]float64, 0, 16)
		for _, n := range p.Live() {
			vals = append(vals, float64(counts[n]))
		}
		cv := stats.CoeffVar(vals)
		limit := 0.25
		if cv > limit {
			t.Errorf("%s: initial load CV=%.3f exceeds %.2f", p.Name(), cv, limit)
		}
	}
}

func TestQuickOwnerAlwaysLive(t *testing.T) {
	f := func(keyRaw []byte, failIdx uint8) bool {
		key := string(keyRaw)
		p := NewMultiHash(nodes(9))
		p.Fail(p.Live()[int(failIdx)%9])
		owner, ok := p.Owner(key)
		if !ok {
			return false
		}
		for _, n := range p.Live() {
			if n == owner {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMovementReportAccessors(t *testing.T) {
	rep := MovementReport{Keys: 100, FromFailed: 10, Collateral: 5}
	if rep.Moved() != 15 {
		t.Errorf("Moved = %d", rep.Moved())
	}
	if rep.MovedFraction() != 0.15 {
		t.Errorf("MovedFraction = %v", rep.MovedFraction())
	}
	if (MovementReport{}).MovedFraction() != 0 {
		t.Error("empty report fraction should be 0")
	}
}

func BenchmarkPartitionerOwner(b *testing.B) {
	ks := keys(1024)
	for _, p := range strategies(256) {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Owner(ks[i&1023])
			}
		})
	}
}

func BenchmarkPartitionerMovement(b *testing.B) {
	ks := keys(4096)
	builders := []func() Partitioner{
		func() Partitioner { return NewModulo(nodes(256)) },
		func() Partitioner { return NewMultiHash(nodes(256)) },
		func() Partitioner { return NewRange(nodes(256), false) },
		func() Partitioner { return NewRing(nodes(256), 100) },
	}
	for _, mk := range builders {
		b.Run(mk().Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := mk()
				MeasureFailure(p, ks, p.Live()[128])
			}
		})
	}
}
