package partition

import (
	"sort"
	"sync"

	"repro/internal/xhash"
)

// Jump implements Lamping & Veach's jump consistent hash over the live
// node list. Jump hash is the modern alternative to ring hashing when
// buckets only grow/shrink at the end: resizing from n to n+1 moves
// exactly 1/(n+1) of the keys. Its weakness — and why FT-Cache cannot
// use it — is arbitrary-member removal: bucket indices are positional,
// so failing a node in the middle renumbers every later node and strands
// cached data, just like modulo. MeasureFailure quantifies this.
type Jump struct {
	mu   sync.RWMutex
	live []NodeID // sorted; jump bucket i maps to live[i]
}

// NewJump creates a Jump partitioner over nodes.
func NewJump(nodes []NodeID) *Jump {
	j := &Jump{live: append([]NodeID(nil), nodes...)}
	sort.Slice(j.live, func(a, b int) bool { return j.live[a] < j.live[b] })
	return j
}

// Name implements Partitioner.
func (j *Jump) Name() string { return "jumphash" }

// jumpHash is the textbook algorithm: O(ln n) expected iterations,
// no memory.
func jumpHash(key uint64, buckets int) int {
	var b, next int64 = -1, 0
	for next < int64(buckets) {
		b = next
		key = key*2862933555777941757 + 1
		next = int64(float64(b+1) * (float64(1<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Owner implements Partitioner.
func (j *Jump) Owner(key string) (NodeID, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	if len(j.live) == 0 {
		return "", false
	}
	h := xhash.XXH64String(key, 0)
	return j.live[jumpHash(h, len(j.live))], true
}

// Fail implements Partitioner.
func (j *Jump) Fail(node NodeID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, n := range j.live {
		if n == node {
			j.live = append(j.live[:i], j.live[i+1:]...)
			return
		}
	}
}

// Live implements Partitioner.
func (j *Jump) Live() []NodeID {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return append([]NodeID(nil), j.live...)
}

var _ Partitioner = (*Jump)(nil)
