package partition

// MovementReport quantifies how much data a membership change relocates —
// the metric behind the paper's argument that the hash ring achieves "the
// absolute theoretical minimum data movement" (§IV-B).
type MovementReport struct {
	Strategy string
	Keys     int
	// FromFailed counts keys that were owned by the failed node; these
	// must move no matter the strategy (their cache copy is gone).
	FromFailed int
	// Collateral counts keys that moved between two surviving nodes —
	// pure overhead: their cached copies were intact but are now on the
	// "wrong" node and must be re-fetched or migrated.
	Collateral int
	// LiveAfter is the surviving node count.
	LiveAfter int
}

// Moved is the total number of keys whose owner changed.
func (m MovementReport) Moved() int { return m.FromFailed + m.Collateral }

// MovedFraction is Moved as a fraction of the key population.
func (m MovementReport) MovedFraction() float64 {
	if m.Keys == 0 {
		return 0
	}
	return float64(m.Moved()) / float64(m.Keys)
}

// MeasureFailure records key ownership, fails node on p, and reports how
// ownership shifted. The partitioner is mutated (the node stays failed).
func MeasureFailure(p Partitioner, keys []string, node NodeID) MovementReport {
	before := make([]NodeID, len(keys))
	for i, k := range keys {
		before[i], _ = p.Owner(k)
	}
	p.Fail(node)
	rep := MovementReport{Strategy: p.Name(), Keys: len(keys), LiveAfter: len(p.Live())}
	for i, k := range keys {
		after, ok := p.Owner(k)
		if !ok {
			continue
		}
		switch {
		case before[i] == node:
			rep.FromFailed++ // unavoidable move
		case after != before[i]:
			rep.Collateral++ // survivor-to-survivor churn
		}
	}
	return rep
}

// LoadCounts returns the number of keys owned per live node, a balance
// snapshot comparable across strategies.
func LoadCounts(p Partitioner, keys []string) map[NodeID]int {
	counts := make(map[NodeID]int)
	for _, k := range keys {
		if n, ok := p.Owner(k); ok {
			counts[n]++
		}
	}
	return counts
}
