package hashring

import (
	"testing"
)

// ownershipMap resolves every key against the ring.
func ownershipMap(r *Ring, keys []string) map[string]NodeID {
	out := make(map[string]NodeID, len(keys))
	for _, k := range keys {
		if owner, ok := r.Owner(k); ok {
			out[k] = owner
		}
	}
	return out
}

// TestRemoveReAddRestoresOwnership is the rejoin correctness anchor:
// because a node's virtual points are a pure function of (node, vnodes,
// seed), removing a node and re-adding it must restore bit-identical
// ownership for every key — against a ring that never saw the failure.
func TestRemoveReAddRestoresOwnership(t *testing.T) {
	nodes := nodeNames(16)
	keys := fileKeys(5000)
	cfg := Config{VirtualNodes: 100, Seed: 42}

	pristine := NewWithNodes(cfg, nodes)
	want := ownershipMap(pristine, keys)

	r := NewWithNodes(cfg, nodes)
	victim := nodes[5]
	r.Remove(victim)
	// While removed, nothing may map to the victim.
	for k, o := range ownershipMap(r, keys) {
		if o == victim {
			t.Fatalf("key %s owned by removed node", k)
		}
	}
	r.Add(victim)

	got := ownershipMap(r, keys)
	if len(got) != len(want) {
		t.Fatalf("ownership size %d != pristine %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %s: owner %s after remove+re-add, pristine says %s", k, got[k], w)
		}
	}
	if r.PointCount() != pristine.PointCount() {
		t.Errorf("point count %d != pristine %d", r.PointCount(), pristine.PointCount())
	}
}

// TestPlanRejoinMatchesActualAdd: the planned warm set must be exactly
// the keys whose ownership flips to the joining node when Add commits.
func TestPlanRejoinMatchesActualAdd(t *testing.T) {
	nodes := nodeNames(12)
	keys := fileKeys(3000)
	r := NewWithNodes(Config{VirtualNodes: 100, Seed: 7}, nodes)
	victim := nodes[3]
	r.Remove(victim)

	before := ownershipMap(r, keys)
	plan := r.PlanRejoin(victim, keys)
	if plan.Joining != victim {
		t.Fatalf("plan.Joining = %s", plan.Joining)
	}
	planned := make(map[string]bool, len(plan.Keys))
	for _, k := range plan.Keys {
		planned[k] = true
	}

	r.Add(victim)
	after := ownershipMap(r, keys)
	for _, k := range keys {
		moved := after[k] == victim
		if moved != planned[k] {
			t.Fatalf("key %s: planned=%v but post-add owner is %s (was %s)",
				k, planned[k], after[k], before[k])
		}
		// Minimal movement: keys not moving to the joiner must not move
		// at all.
		if !moved && after[k] != before[k] {
			t.Fatalf("key %s moved %s→%s without involving the joiner", k, before[k], after[k])
		}
	}
	if len(plan.Keys) == 0 {
		t.Error("rejoin plan warmed zero keys — victim reclaimed nothing, which cannot be right at these sizes")
	}
}

// TestPlanRejoinInverseOfRecache: over the same key set, the keys the
// failure plan says the node loses are exactly the keys the rejoin plan
// says it reclaims.
func TestPlanRejoinInverseOfRecache(t *testing.T) {
	nodes := nodeNames(10)
	keys := fileKeys(2000)
	r := NewWithNodes(Config{VirtualNodes: 100, Seed: 3}, nodes)
	victim := nodes[7]

	lost := make(map[string]bool)
	for _, ks := range r.PlanRecache(victim, keys).Moves {
		for _, k := range ks {
			lost[k] = true
		}
	}
	r.Remove(victim)
	plan := r.PlanRejoin(victim, keys)
	if len(plan.Keys) != len(lost) {
		t.Fatalf("rejoin reclaims %d keys, recache lost %d", len(plan.Keys), len(lost))
	}
	for _, k := range plan.Keys {
		if !lost[k] {
			t.Fatalf("rejoin reclaims %s which the recache plan never lost", k)
		}
	}
}

func TestPlanRejoinExistingMemberEmpty(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 50, Seed: 1}, nodeNames(4))
	plan := r.PlanRejoin("node-0002", fileKeys(100))
	if len(plan.Keys) != 0 {
		t.Errorf("PlanRejoin for a current member returned %d keys, want 0 (double-rejoin must be benign)", len(plan.Keys))
	}
}

func TestPlanRejoinEmptyRing(t *testing.T) {
	r := New(Config{VirtualNodes: 50, Seed: 1})
	plan := r.PlanRejoin("node-0000", fileKeys(50))
	// Sole member of an empty ring owns everything once added.
	if len(plan.Keys) != 50 {
		t.Errorf("sole joiner plans %d keys, want all 50", len(plan.Keys))
	}
}
