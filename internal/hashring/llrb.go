package hashring

import "sync"

// TreeRing is a consistent-hash ring backed by a left-leaning red-black
// tree keyed on (hash, node). It mirrors the paper's C++ implementation,
// which stored ring points in a std::map and used lower_bound for the
// clockwise-successor query (§IV-B: "The implementation employs map data
// structure ... The logarithmic time complexity of map operations enables
// swift adaptation to node failures").
//
// Compared to Ring it trades slower lookups (pointer chasing) for
// O(V log P) membership changes instead of O(P) re-sorts; the ablation
// bench BenchmarkRingVsTree quantifies the difference.
type TreeRing struct {
	mu     sync.RWMutex
	cfg    Config
	root   *llrbNode
	size   int
	member map[NodeID]struct{}
}

type llrbNode struct {
	hash        uint64
	node        NodeID
	left, right *llrbNode
	red         bool
}

// NewTree creates an empty TreeRing. A non-positive VirtualNodes falls
// back to DefaultVirtualNodes.
func NewTree(cfg Config) *TreeRing {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	return &TreeRing{cfg: cfg, member: make(map[NodeID]struct{})}
}

// NewTreeWithNodes creates a TreeRing pre-populated with nodes.
func NewTreeWithNodes(cfg Config, nodes []NodeID) *TreeRing {
	t := NewTree(cfg)
	for _, n := range nodes {
		t.Add(n)
	}
	return t
}

func pointLess(h1 uint64, n1 NodeID, h2 uint64, n2 NodeID) bool {
	if h1 != h2 {
		return h1 < h2
	}
	return n1 < n2
}

func isRed(n *llrbNode) bool { return n != nil && n.red }

func rotateLeft(h *llrbNode) *llrbNode {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight(h *llrbNode) *llrbNode {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func colorFlip(h *llrbNode) {
	h.red = !h.red
	if h.left != nil {
		h.left.red = !h.left.red
	}
	if h.right != nil {
		h.right.red = !h.right.red
	}
}

func fixUp(h *llrbNode) *llrbNode {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		colorFlip(h)
	}
	return h
}

func insert(h *llrbNode, hash uint64, node NodeID) *llrbNode {
	if h == nil {
		return &llrbNode{hash: hash, node: node, red: true}
	}
	switch {
	case pointLess(hash, node, h.hash, h.node):
		h.left = insert(h.left, hash, node)
	case pointLess(h.hash, h.node, hash, node):
		h.right = insert(h.right, hash, node)
	default:
		// duplicate point — keep one copy
	}
	return fixUp(h)
}

func moveRedLeft(h *llrbNode) *llrbNode {
	colorFlip(h)
	if h.right != nil && isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		colorFlip(h)
	}
	return h
}

func moveRedRight(h *llrbNode) *llrbNode {
	colorFlip(h)
	if h.left != nil && isRed(h.left.left) {
		h = rotateRight(h)
		colorFlip(h)
	}
	return h
}

func minNode(h *llrbNode) *llrbNode {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin(h *llrbNode) *llrbNode {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func deleteNode(h *llrbNode, hash uint64, node NodeID) *llrbNode {
	if h == nil {
		return nil
	}
	if pointLess(hash, node, h.hash, h.node) {
		if h.left != nil {
			if !isRed(h.left) && !isRed(h.left.left) {
				h = moveRedLeft(h)
			}
			h.left = deleteNode(h.left, hash, node)
		}
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if h.hash == hash && h.node == node && h.right == nil {
			return nil
		}
		if h.right != nil {
			if !isRed(h.right) && !isRed(h.right.left) {
				h = moveRedRight(h)
			}
			if h.hash == hash && h.node == node {
				m := minNode(h.right)
				h.hash, h.node = m.hash, m.node
				h.right = deleteMin(h.right)
			} else {
				h.right = deleteNode(h.right, hash, node)
			}
		}
	}
	return fixUp(h)
}

// successor returns the first tree point with position >= hash
// (lower_bound), or nil when no such point exists.
func successor(h *llrbNode, hash uint64) *llrbNode {
	var best *llrbNode
	for h != nil {
		if h.hash >= hash {
			best = h
			h = h.left
		} else {
			h = h.right
		}
	}
	return best
}

// KeyHash returns the position of key on the ring (seeded).
func (t *TreeRing) KeyHash(key string) uint64 {
	return keyHash(key, t.cfg.Seed)
}

// Add inserts node with its virtual points; adding a member is a no-op.
func (t *TreeRing) Add(node NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.member[node]; ok {
		return
	}
	t.member[node] = struct{}{}
	for _, h := range pointsFor(node, t.cfg.VirtualNodes, t.cfg.Seed) {
		t.root = insert(t.root, h, node)
		t.root.red = false
		t.size++
	}
}

// Remove deletes node and its virtual points; removing a non-member is a
// no-op.
func (t *TreeRing) Remove(node NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.member[node]; !ok {
		return
	}
	delete(t.member, node)
	for _, h := range pointsFor(node, t.cfg.VirtualNodes, t.cfg.Seed) {
		t.root = deleteNode(t.root, h, node)
		if t.root != nil {
			t.root.red = false
		}
		t.size--
	}
}

// Owner returns the node owning key; ok=false on an empty ring.
func (t *TreeRing) Owner(key string) (NodeID, bool) {
	h := keyHash(key, t.cfg.Seed)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return "", false
	}
	n := successor(t.root, h)
	if n == nil {
		n = minNode(t.root) // wrap around the ring
	}
	return n.node, true
}

// Nodes returns the physical members in unspecified order.
func (t *TreeRing) Nodes() []NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]NodeID, 0, len(t.member))
	for n := range t.member {
		out = append(out, n)
	}
	return out
}

// Len returns the number of physical members.
func (t *TreeRing) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.member)
}

// PointCount returns the number of virtual points in the tree.
func (t *TreeRing) PointCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

var (
	_ Locator = (*Ring)(nil)
	_ Locator = (*TreeRing)(nil)
)
