// Package hashring implements the consistent-hash ring with virtual nodes
// that FT-Cache uses for load-balanced elastic recaching (paper §IV-B).
//
// Both data items (file paths) and nodes are mapped onto a logical
// circular 64-bit hash space. A key is owned by the node whose point is
// nearest in the clockwise direction. Each physical node contributes V
// virtual points so that, when a node fails, its load is spread over many
// successors instead of a single neighbour.
//
// Two interchangeable implementations are provided:
//
//   - Ring: copy-on-write sorted point slices — lock-free O(log P)
//     lookups against an immutable snapshot, O(P) membership change
//     (P = total virtual points). This is the default and the fastest
//     for the read-dominated cache path: Owner never takes a lock and
//     never contends with other readers, no matter how many cores are
//     issuing I/O.
//   - TreeRing (llrb.go): a left-leaning red-black tree, the closest Go
//     equivalent of the std::map the paper's C++ artifact used —
//     O(log P) for both lookups and membership changes.
//
// The shared behaviour is captured by the Locator interface so the two
// can be tested and benchmarked against each other.
package hashring

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/xhash"
)

// ringMetrics aggregate membership-churn observables across every ring
// in the process (each client owns a ring; they all see the same
// failures, so the aggregate is the meaningful series). Lookups are
// deliberately NOT counted — Owner is the per-I/O hot path and must
// stay free of shared-cache-line traffic.
type ringMetrics struct {
	swaps     *telemetry.Counter // snapshot publications (Add/Remove/AddWeighted)
	keysMoved *telemetry.Counter // keys re-owned across all RecachePlans
	plans     *telemetry.Counter // PlanRecache invocations
}

// ringMetricsInst is initialized eagerly at package init rather than
// behind a sync.Once: metrics() is reached from PlanRecache, which is
// on the failure-handling hot path, and a Once.Do there would put a
// lock acquisition (and a cold-start stall) on it.
var ringMetricsInst = func() *ringMetrics {
	reg := telemetry.Default()
	return &ringMetrics{
		swaps:     reg.Counter("ftc_ring_snapshot_swaps_total"),
		keysMoved: reg.Counter("ftc_ring_keys_moved_total"),
		plans:     reg.Counter("ftc_ring_recache_plans_total"),
	}
}()

func metrics() *ringMetrics { return ringMetricsInst }

// NodeID identifies a physical node (an HVAC server instance).
type NodeID string

// Locator is the lookup surface shared by ring implementations.
type Locator interface {
	// Owner returns the node owning key, or ok=false if the ring is empty.
	Owner(key string) (NodeID, bool)
	// Add inserts a physical node (with its virtual points).
	Add(node NodeID)
	// Remove deletes a physical node and all its virtual points.
	Remove(node NodeID)
	// Nodes returns the current physical members in unspecified order.
	Nodes() []NodeID
	// Len returns the number of physical members.
	Len() int
}

type point struct {
	hash uint64
	node NodeID
}

// Config controls ring construction.
type Config struct {
	// VirtualNodes is the number of points each physical node contributes.
	// The paper's production setting is 100 (§V-A, "virtual node count is
	// set to 100 per physical node").
	VirtualNodes int
	// Seed perturbs all point and key hashes; every client in a job must
	// use the same seed or they would disagree about ownership.
	Seed uint64
}

// DefaultVirtualNodes is the paper's production virtual-node count.
const DefaultVirtualNodes = 100

// ringSnapshot is one immutable published state of the ring. Nothing in a
// snapshot is ever mutated after publication: membership changes build a
// fresh snapshot (copying maps, merging or filtering into fresh point
// slices) and atomically swap the pointer. Readers therefore see a
// consistent state with no locks and no torn reads, and a lookup racing
// a failure event simply answers from whichever state was current when
// it loaded the pointer.
type ringSnapshot struct {
	points  []point             // sorted by (hash, node)
	member  map[NodeID]struct{} // current physical nodes
	weights map[NodeID]int      // per-node point counts for weighted members
	nodes   []NodeID            // members in sorted order
}

var emptySnapshot = &ringSnapshot{
	member:  map[NodeID]struct{}{},
	weights: map[NodeID]int{},
}

// Ring is a consistent-hash ring backed by copy-on-write sorted point
// slices. It is safe for concurrent use: lookups are lock-free reads of
// an atomically published immutable snapshot; membership changes are
// serialized by a writer mutex and publish a new snapshot. Membership
// changes are rare (node failures), lookups happen on every I/O request.
type Ring struct {
	cfg     Config
	writeMu sync.Mutex // serializes membership changes (writers only)
	snap    atomic.Pointer[ringSnapshot]
}

// New creates an empty ring. A non-positive VirtualNodes falls back to
// DefaultVirtualNodes.
func New(cfg Config) *Ring {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	r := &Ring{cfg: cfg}
	r.snap.Store(emptySnapshot)
	return r
}

// NewWithNodes creates a ring pre-populated with nodes, sorting the
// point set once (O(P log P)) instead of per-member.
func NewWithNodes(cfg Config, nodes []NodeID) *Ring {
	r := New(cfg)
	s := &ringSnapshot{
		member:  make(map[NodeID]struct{}, len(nodes)),
		weights: map[NodeID]int{},
	}
	for _, n := range nodes {
		if _, ok := s.member[n]; ok {
			continue
		}
		s.member[n] = struct{}{}
		for _, h := range pointsFor(n, r.cfg.VirtualNodes, r.cfg.Seed) {
			s.points = append(s.points, point{hash: h, node: n})
		}
	}
	sortPoints(s.points)
	s.nodes = sortedMembers(s.member)
	r.snap.Store(s)
	return r
}

func pointLessFn(a, b point) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.node < b.node
}

func sortPoints(pts []point) {
	sort.Slice(pts, func(i, j int) bool { return pointLessFn(pts[i], pts[j]) })
}

func sortedMembers(member map[NodeID]struct{}) []NodeID {
	out := make([]NodeID, 0, len(member))
	for n := range member {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// searchPoints returns the first index whose hash is >= h (len(pts) when
// none is). It matches sort.Search's semantics for the predicate
// pts[i].hash >= h, hand-rolled so the hot path pays neither the closure
// call per probe nor the func-value indirection — just a branch-light
// loop the compiler keeps in registers.
func searchPoints(pts []point, h uint64) int {
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1) // avoids overflow, always in [lo, hi)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ownerOf resolves h against an immutable snapshot's point slice.
func ownerOf(pts []point, h uint64) (NodeID, bool) {
	if len(pts) == 0 {
		return "", false
	}
	i := searchPoints(pts, h)
	if i == len(pts) {
		i = 0 // wrap
	}
	return pts[i].node, true
}

// pointsFor derives the virtual point hashes for a node. The first point
// is the seeded hash of the node ID; subsequent points come from a
// splitmix64 stream so they are decorrelated yet deterministic.
func pointsFor(node NodeID, vnodes int, seed uint64) []uint64 {
	pts := make([]uint64, vnodes)
	state := xhash.XXH64String(string(node), seed)
	for i := range pts {
		pts[i] = xhash.SplitMix64(&state)
	}
	return pts
}

// keyHash positions a key on the 64-bit ring; shared by all ring
// implementations so they agree on ownership for equal configs.
func keyHash(key string, seed uint64) uint64 {
	return xhash.XXH64String(key, seed)
}

// KeyHash returns the position of key on the ring (seeded).
func (r *Ring) KeyHash(key string) uint64 {
	return keyHash(key, r.cfg.Seed)
}

// addPoints is the shared writer path of Add and AddWeighted: insert node
// with v virtual points (weighted members record the count so Weight can
// report it).
func (r *Ring) addPoints(node NodeID, v int, weighted bool) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	cur := r.snap.Load()
	if _, ok := cur.member[node]; ok {
		return
	}
	add := make([]point, 0, v)
	for _, h := range pointsFor(node, v, r.cfg.Seed) {
		add = append(add, point{hash: h, node: node})
	}
	sortPoints(add)
	next := &ringSnapshot{
		// Linear merge of two sorted runs into a fresh slice: O(P + V)
		// per membership change instead of re-sorting the whole set.
		points:  mergePoints(cur.points, add),
		member:  make(map[NodeID]struct{}, len(cur.member)+1),
		weights: make(map[NodeID]int, len(cur.weights)+1),
	}
	for n := range cur.member {
		next.member[n] = struct{}{}
	}
	for n, w := range cur.weights {
		next.weights[n] = w
	}
	next.member[node] = struct{}{}
	if weighted {
		next.weights[node] = v
	}
	next.nodes = sortedMembers(next.member)
	r.snap.Store(next)
	metrics().swaps.Inc()
	telemetry.TraceEvent(telemetry.EventRingChange, string(node), "add", int64(len(next.member)))
}

// Add inserts node with its virtual points. Adding an existing member is
// a no-op, so rejoin after a spurious failure detection is idempotent.
func (r *Ring) Add(node NodeID) {
	r.addPoints(node, r.cfg.VirtualNodes, false)
}

// Remove deletes node and all its virtual points. Removing a non-member
// is a no-op. This is the operation the HVAC client performs when the
// failure detector declares a server dead.
func (r *Ring) Remove(node NodeID) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	cur := r.snap.Load()
	if _, ok := cur.member[node]; !ok {
		return
	}
	next := &ringSnapshot{
		points:  filterPoints(cur.points, node),
		member:  make(map[NodeID]struct{}, len(cur.member)-1),
		weights: make(map[NodeID]int, len(cur.weights)),
	}
	for n := range cur.member {
		if n != node {
			next.member[n] = struct{}{}
		}
	}
	for n, w := range cur.weights {
		if n != node {
			next.weights[n] = w
		}
	}
	next.nodes = sortedMembers(next.member)
	r.snap.Store(next)
	metrics().swaps.Inc()
	telemetry.TraceEvent(telemetry.EventRingChange, string(node), "remove", int64(len(next.member)))
}

// filterPoints returns a fresh sorted slice of pts minus node's points.
// The input is never written: live snapshots share it.
func filterPoints(pts []point, node NodeID) []point {
	kept := make([]point, 0, len(pts))
	for _, p := range pts {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	return kept
}

// Owner returns the node owning key: the owner of the first ring point at
// or clockwise-after the key's hash (wrapping around). ok is false when
// the ring has no members. Lock-free: it binary-searches the current
// immutable snapshot.
//
//ftc:hotpath
func (r *Ring) Owner(key string) (NodeID, bool) {
	return ownerOf(r.snap.Load().points, r.KeyHash(key))
}

// OwnerOfHash returns the node owning an already-computed ring position.
//
//ftc:hotpath
func (r *Ring) OwnerOfHash(h uint64) (NodeID, bool) {
	return ownerOf(r.snap.Load().points, h)
}

// Owners returns up to n distinct physical nodes encountered walking
// clockwise from key's position. The first element equals Owner(key).
// Used for replica placement experiments; ok is false on an empty ring.
//
//ftc:hotpath
func (r *Ring) Owners(key string, n int) ([]NodeID, bool) {
	h := r.KeyHash(key)
	pts := r.snap.Load().points
	if len(pts) == 0 || n <= 0 {
		return nil, false
	}
	start := searchPoints(pts, h)
	if start == len(pts) {
		start = 0
	}
	seen := make(map[NodeID]struct{}, n)
	out := make([]NodeID, 0, n)
	// Walk with an explicit index reset at the wrap instead of a modulo
	// per step: one predictable branch, not an integer division.
	i := start
	for steps := 0; steps < len(pts) && len(out) < n; steps++ {
		p := pts[i]
		i++
		if i == len(pts) {
			i = 0
		}
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out, true
}

// Successors returns up to n distinct physical nodes following key's
// owner clockwise — the replica targets for hot-object fan-out. It is
// Owners(key, n+1) minus the owner itself; ok is false on an empty ring.
//
//ftc:hotpath
func (r *Ring) Successors(key string, n int) ([]NodeID, bool) {
	owners, ok := r.Owners(key, n+1)
	if !ok || len(owners) == 0 {
		return nil, ok
	}
	return owners[1:], true
}

// Nodes returns the physical members in sorted order (stable for tests
// and deterministic experiment output).
func (r *Ring) Nodes() []NodeID {
	return append([]NodeID(nil), r.snap.Load().nodes...)
}

// Len returns the number of physical members.
func (r *Ring) Len() int {
	return len(r.snap.Load().member)
}

// PointCount returns the number of virtual points currently on the ring.
func (r *Ring) PointCount() int {
	return len(r.snap.Load().points)
}

// Contains reports whether node is a current member.
func (r *Ring) Contains(node NodeID) bool {
	_, ok := r.snap.Load().member[node]
	return ok
}

// Clone returns an independent copy of the ring (same config, members and
// points). Because snapshots are immutable, cloning is O(1): both rings
// share the current snapshot until either changes membership.
// Experiments use clones to explore failures without mutating the shared
// ring.
func (r *Ring) Clone() *Ring {
	c := &Ring{cfg: r.cfg}
	c.snap.Store(r.snap.Load())
	return c
}

// Config returns the ring's configuration.
func (r *Ring) Config() Config { return r.cfg }

// RecachePlan describes where the keys previously owned by a failed node
// land after its removal: the mapping every surviving client computes
// implicitly when it drops the dead node from its ring.
type RecachePlan struct {
	Failed NodeID
	// Moves maps each new owner to the keys it inherits.
	Moves map[NodeID][]string
	// Lost is the total number of keys that changed owner.
	Lost int
}

// PlanRecache computes, for the given key population, which keys the
// failed node owned and who inherits each after removal. The ring itself
// is not modified. It panics if failed is not a member, because planning
// recaching for a node that is not on the ring indicates a bookkeeping
// bug in the caller.
//
// One pass: the before state is the current snapshot, the after state is
// the same point set minus the failed node's points, and each key is
// hashed once and resolved against both slices — no ring clone, no
// per-key locking, no second hash of the key.
//
//ftc:hotpath
func (r *Ring) PlanRecache(failed NodeID, keys []string) RecachePlan {
	cur := r.snap.Load()
	if _, ok := cur.member[failed]; !ok {
		panic(`hashring: PlanRecache for non-member "` + string(failed) + `"`)
	}
	after := filterPoints(cur.points, failed)
	plan := RecachePlan{Failed: failed, Moves: make(map[NodeID][]string)}
	for _, k := range keys {
		h := keyHash(k, r.cfg.Seed)
		owner, _ := ownerOf(cur.points, h)
		if owner != failed {
			continue
		}
		newOwner, ok := ownerOf(after, h)
		if !ok {
			continue // ring became empty; nothing can inherit
		}
		plan.Moves[newOwner] = append(plan.Moves[newOwner], k)
		plan.Lost++
	}
	m := metrics()
	m.plans.Inc()
	m.keysMoved.Add(int64(plan.Lost))
	//ftclint:ignore hotpathlock recache planning runs once per node failure, not per request; the event-trace lock is uncontended off the steady-state read path
	telemetry.TraceEvent(telemetry.EventRecachePlanned, string(failed), "plan", int64(plan.Lost))
	return plan
}

// Receivers returns the number of distinct nodes that inherit at least
// one key under the plan — the paper's Fig 6(b) "Receiver Nodes" metric.
func (p RecachePlan) Receivers() int { return len(p.Moves) }

// FilesPerReceiver returns the per-receiver inherited key counts in
// unspecified order — the basis of Fig 6(b)'s "Files per Node" metric.
func (p RecachePlan) FilesPerReceiver() []int {
	out := make([]int, 0, len(p.Moves))
	for _, ks := range p.Moves {
		out = append(out, len(ks))
	}
	return out
}

// RejoinPlan describes the keys a rejoining node will own once re-added:
// the warm set the recovery path fills onto its NVMe before the ring swap
// so the node comes back hot instead of serving a cold cache.
type RejoinPlan struct {
	Joining NodeID
	// Keys are the keys the node will own after re-add, in input order.
	Keys []string
}

// PlanRejoin is the inverse of PlanRecache: for the given key
// population, which keys will joining own once it is re-added with its
// virtual points. The ring is not modified — the caller warms the
// node's cache from the keys' current owners first, then commits with
// Add, so readers never route to the rejoining node before its data is
// in place.
//
// Consistent hashing makes this exact: the points a node contributes
// are a pure function of (node, vnodes, seed), so the planned ownership
// is bit-identical to what Add will install. If joining is already a
// member the plan is empty — unlike PlanRecache's panic, because rejoin
// races benignly (a double-revive must be a no-op, not a crash).
func (r *Ring) PlanRejoin(joining NodeID, keys []string) RejoinPlan {
	cur := r.snap.Load()
	plan := RejoinPlan{Joining: joining}
	if _, ok := cur.member[joining]; ok {
		return plan
	}
	add := make([]point, 0, r.cfg.VirtualNodes)
	for _, h := range pointsFor(joining, r.cfg.VirtualNodes, r.cfg.Seed) {
		add = append(add, point{hash: h, node: joining})
	}
	sortPoints(add)
	after := mergePoints(cur.points, add)
	for _, k := range keys {
		if owner, ok := ownerOf(after, keyHash(k, r.cfg.Seed)); ok && owner == joining {
			plan.Keys = append(plan.Keys, k)
		}
	}
	m := metrics()
	m.plans.Inc()
	m.keysMoved.Add(int64(len(plan.Keys)))
	telemetry.TraceEvent(telemetry.EventRecachePlanned, string(joining), "rejoin", int64(len(plan.Keys)))
	return plan
}
