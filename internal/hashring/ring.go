// Package hashring implements the consistent-hash ring with virtual nodes
// that FT-Cache uses for load-balanced elastic recaching (paper §IV-B).
//
// Both data items (file paths) and nodes are mapped onto a logical
// circular 64-bit hash space. A key is owned by the node whose point is
// nearest in the clockwise direction. Each physical node contributes V
// virtual points so that, when a node fails, its load is spread over many
// successors instead of a single neighbour.
//
// Two interchangeable implementations are provided:
//
//   - Ring: a sorted point slice with binary-search lookup — O(log P)
//     lookups, O(P) membership change (P = total virtual points). This is
//     the default and the fastest for the read-dominated cache path.
//   - TreeRing (llrb.go): a left-leaning red-black tree, the closest Go
//     equivalent of the std::map the paper's C++ artifact used —
//     O(log P) for both lookups and membership changes.
//
// The shared behaviour is captured by the Locator interface so the two
// can be tested and benchmarked against each other.
package hashring

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/xhash"
)

// NodeID identifies a physical node (an HVAC server instance).
type NodeID string

// Locator is the lookup surface shared by ring implementations.
type Locator interface {
	// Owner returns the node owning key, or ok=false if the ring is empty.
	Owner(key string) (NodeID, bool)
	// Add inserts a physical node (with its virtual points).
	Add(node NodeID)
	// Remove deletes a physical node and all its virtual points.
	Remove(node NodeID)
	// Nodes returns the current physical members in unspecified order.
	Nodes() []NodeID
	// Len returns the number of physical members.
	Len() int
}

type point struct {
	hash uint64
	node NodeID
}

// Config controls ring construction.
type Config struct {
	// VirtualNodes is the number of points each physical node contributes.
	// The paper's production setting is 100 (§V-A, "virtual node count is
	// set to 100 per physical node").
	VirtualNodes int
	// Seed perturbs all point and key hashes; every client in a job must
	// use the same seed or they would disagree about ownership.
	Seed uint64
}

// DefaultVirtualNodes is the paper's production virtual-node count.
const DefaultVirtualNodes = 100

// Ring is a consistent-hash ring backed by a sorted point slice.
// It is safe for concurrent use: lookups take a read lock, membership
// changes take a write lock. Membership changes are rare (node failures),
// lookups happen on every I/O request.
type Ring struct {
	mu      sync.RWMutex
	cfg     Config
	points  []point             // sorted by (hash, node)
	member  map[NodeID]struct{} // current physical nodes
	weights map[NodeID]int      // per-node point counts for weighted members
}

// New creates an empty ring. A non-positive VirtualNodes falls back to
// DefaultVirtualNodes.
func New(cfg Config) *Ring {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	return &Ring{
		cfg:     cfg,
		member:  make(map[NodeID]struct{}),
		weights: make(map[NodeID]int),
	}
}

// NewWithNodes creates a ring pre-populated with nodes, sorting the
// point set once (O(P log P)) instead of per-member.
func NewWithNodes(cfg Config, nodes []NodeID) *Ring {
	r := New(cfg)
	for _, n := range nodes {
		if _, ok := r.member[n]; ok {
			continue
		}
		r.member[n] = struct{}{}
		for _, h := range pointsFor(n, r.cfg.VirtualNodes, r.cfg.Seed) {
			r.points = append(r.points, point{hash: h, node: n})
		}
	}
	sortPoints(r.points)
	return r
}

func pointLessFn(a, b point) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.node < b.node
}

func sortPoints(pts []point) {
	sort.Slice(pts, func(i, j int) bool { return pointLessFn(pts[i], pts[j]) })
}

// pointsFor derives the virtual point hashes for a node. The first point
// is the seeded hash of the node ID; subsequent points come from a
// splitmix64 stream so they are decorrelated yet deterministic.
func pointsFor(node NodeID, vnodes int, seed uint64) []uint64 {
	pts := make([]uint64, vnodes)
	state := xhash.XXH64String(string(node), seed)
	for i := range pts {
		pts[i] = xhash.SplitMix64(&state)
	}
	return pts
}

// keyHash positions a key on the 64-bit ring; shared by all ring
// implementations so they agree on ownership for equal configs.
func keyHash(key string, seed uint64) uint64 {
	return xhash.XXH64String(key, seed)
}

// KeyHash returns the position of key on the ring (seeded).
func (r *Ring) KeyHash(key string) uint64 {
	return keyHash(key, r.cfg.Seed)
}

// Add inserts node with its virtual points. Adding an existing member is
// a no-op, so rejoin after a spurious failure detection is idempotent.
func (r *Ring) Add(node NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[node]; ok {
		return
	}
	r.member[node] = struct{}{}
	add := make([]point, 0, r.cfg.VirtualNodes)
	for _, h := range pointsFor(node, r.cfg.VirtualNodes, r.cfg.Seed) {
		add = append(add, point{hash: h, node: node})
	}
	sortPoints(add)
	// Linear merge of two sorted runs: O(P + V) per membership change
	// instead of re-sorting the whole point set.
	r.points = mergePoints(r.points, add)
}

// Remove deletes node and all its virtual points. Removing a non-member
// is a no-op. This is the operation the HVAC client performs when the
// failure detector declares a server dead.
func (r *Ring) Remove(node NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[node]; !ok {
		return
	}
	delete(r.member, node)
	delete(r.weights, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning key: the owner of the first ring point at
// or clockwise-after the key's hash (wrapping around). ok is false when
// the ring has no members.
func (r *Ring) Owner(key string) (NodeID, bool) {
	h := r.KeyHash(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerOfHashLocked(h)
}

// OwnerOfHash returns the node owning an already-computed ring position.
func (r *Ring) OwnerOfHash(h uint64) (NodeID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerOfHashLocked(h)
}

func (r *Ring) ownerOfHashLocked(h uint64) (NodeID, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].node, true
}

// Owners returns up to n distinct physical nodes encountered walking
// clockwise from key's position. The first element equals Owner(key).
// Used for replica placement experiments; ok is false on an empty ring.
func (r *Ring) Owners(key string, n int) ([]NodeID, bool) {
	h := r.KeyHash(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil, false
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	seen := make(map[NodeID]struct{}, n)
	out := make([]NodeID, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out, true
}

// Nodes returns the physical members in sorted order (stable for tests
// and deterministic experiment output).
func (r *Ring) Nodes() []NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeID, 0, len(r.member))
	for n := range r.member {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of physical members.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// PointCount returns the number of virtual points currently on the ring.
func (r *Ring) PointCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.points)
}

// Contains reports whether node is a current member.
func (r *Ring) Contains(node NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.member[node]
	return ok
}

// Clone returns an independent copy of the ring (same config, members and
// points). Experiments use clones to explore failures without mutating
// the shared ring.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{
		cfg:     r.cfg,
		member:  make(map[NodeID]struct{}, len(r.member)),
		weights: make(map[NodeID]int, len(r.weights)),
	}
	c.points = append([]point(nil), r.points...)
	for n := range r.member {
		c.member[n] = struct{}{}
	}
	for n, w := range r.weights {
		c.weights[n] = w
	}
	return c
}

// Config returns the ring's configuration.
func (r *Ring) Config() Config { return r.cfg }

// RecachePlan describes where the keys previously owned by a failed node
// land after its removal: the mapping every surviving client computes
// implicitly when it drops the dead node from its ring.
type RecachePlan struct {
	Failed NodeID
	// Moves maps each new owner to the keys it inherits.
	Moves map[NodeID][]string
	// Lost is the total number of keys that changed owner.
	Lost int
}

// PlanRecache computes, for the given key population, which keys the
// failed node owned and who inherits each after removal. The ring itself
// is not modified. It panics if failed is not a member, because planning
// recaching for a node that is not on the ring indicates a bookkeeping
// bug in the caller.
func (r *Ring) PlanRecache(failed NodeID, keys []string) RecachePlan {
	if !r.Contains(failed) {
		panic(fmt.Sprintf("hashring: PlanRecache for non-member %q", failed))
	}
	after := r.Clone()
	after.Remove(failed)
	plan := RecachePlan{Failed: failed, Moves: make(map[NodeID][]string)}
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner != failed {
			continue
		}
		newOwner, ok := after.Owner(k)
		if !ok {
			continue // ring became empty; nothing can inherit
		}
		plan.Moves[newOwner] = append(plan.Moves[newOwner], k)
		plan.Lost++
	}
	return plan
}

// Receivers returns the number of distinct nodes that inherit at least
// one key under the plan — the paper's Fig 6(b) "Receiver Nodes" metric.
func (p RecachePlan) Receivers() int { return len(p.Moves) }

// FilesPerReceiver returns the per-receiver inherited key counts in
// unspecified order — the basis of Fig 6(b)'s "Files per Node" metric.
func (p RecachePlan) FilesPerReceiver() []int {
	out := make([]int, 0, len(p.Moves))
	for _, ks := range p.Moves {
		out = append(out, len(ks))
	}
	return out
}
