package hashring

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkRingOwnerParallel measures the contended hot path: every
// training-batch I/O in every client goroutine performs one Owner lookup,
// while membership stays constant (failures are rare). Run with -cpu 8 to
// see how lookup throughput scales with cores.
func BenchmarkRingOwnerParallel(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("nodes=%d/v=100", n), func(b *testing.B) {
			r := NewWithNodes(Config{VirtualNodes: 100}, nodeNames(n))
			keys := fileKeys(1024)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := r.Owner(keys[i&1023]); !ok {
						b.Fail()
					}
					i++
				}
			})
		})
	}
}

// BenchmarkRingOwnerParallelChurn is the same lookup load with a writer
// repeatedly removing and re-adding one node, the worst realistic case
// for the read path (failure + revive during full training traffic).
func BenchmarkRingOwnerParallelChurn(b *testing.B) {
	r := NewWithNodes(Config{VirtualNodes: 100}, nodeNames(64))
	keys := fileKeys(1024)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			r.Remove("node-0001")
			r.Add("node-0001")
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.Owner(keys[i&1023])
			i++
		}
	})
	b.StopTimer()
	stop.Store(true)
	<-done
}

// BenchmarkPlanRecache measures failure-time planning over a large key
// population (the one write-path operation whose cost is user-visible:
// it gates recache start after a node death).
func BenchmarkPlanRecache(b *testing.B) {
	nodes := nodeNames(128)
	r := NewWithNodes(Config{VirtualNodes: 100}, nodes)
	keys := fileKeys(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PlanRecache(nodes[i%128], keys)
	}
}

// BenchmarkRingOwners measures the replica-placement walk.
func BenchmarkRingOwners(b *testing.B) {
	r := NewWithNodes(Config{VirtualNodes: 100}, nodeNames(64))
	keys := fileKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owners(keys[i&1023], 3)
	}
}
