package hashring

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveOwner is an O(P) reference resolver: scan the sorted point slice
// for the first point at or clockwise-after h, wrapping to the lowest
// point. Used to pin the binary-search implementations to the spec.
func naiveOwner(pts []point, h uint64) (NodeID, bool) {
	if len(pts) == 0 {
		return "", false
	}
	for _, p := range pts {
		if p.hash >= h {
			return p.node, true
		}
	}
	return pts[0].node, true
}

// TestOwnershipEquivalenceUnderChurn drives Ring and TreeRing through
// the same membership churn and asserts, at every step, that 10k random
// keys resolve to the same owner on both — and that Ring agrees with a
// naive linear scan of its own point set. This pins the copy-on-write
// ring's hand-rolled binary search (and its snapshot swaps) bit-for-bit
// to the reference semantics the rest of the system assumes.
func TestOwnershipEquivalenceUnderChurn(t *testing.T) {
	const numKeys = 10000
	cfg := Config{VirtualNodes: 50, Seed: 0xC0FFEE}
	ring := New(cfg)
	tree := NewTree(cfg)

	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
	}

	check := func(step string) {
		t.Helper()
		pts := ring.snap.Load().points
		mismatch := 0
		for _, k := range keys {
			ro, rok := ring.Owner(k)
			to, tok := tree.Owner(k)
			if ro != to || rok != tok {
				mismatch++
				if mismatch <= 3 {
					t.Errorf("%s: key %q: Ring=%q(%v) TreeRing=%q(%v)",
						step, k, ro, rok, to, tok)
				}
			}
			no, nok := naiveOwner(pts, ring.KeyHash(k))
			if ro != no || rok != nok {
				t.Fatalf("%s: key %q: Ring=%q(%v) naive=%q(%v)",
					step, k, ro, rok, no, nok)
			}
		}
		if mismatch > 0 {
			t.Fatalf("%s: %d/%d keys disagree between Ring and TreeRing",
				step, mismatch, numKeys)
		}
	}

	// Grow to 24 nodes, checking at a few sizes including 1 and 2.
	for i := 0; i < 24; i++ {
		n := NodeID(fmt.Sprintf("node-%04d", i))
		ring.Add(n)
		tree.Add(n)
		if i < 2 || i == 7 || i == 23 {
			check(fmt.Sprintf("after add %d", i))
		}
	}

	// Random churn: interleaved removes and re-adds.
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 12; step++ {
		members := ring.Nodes()
		if len(members) > 4 && rng.Intn(2) == 0 {
			victim := members[rng.Intn(len(members))]
			ring.Remove(victim)
			tree.Remove(victim)
		} else {
			n := NodeID(fmt.Sprintf("node-%04d", rng.Intn(32)))
			ring.Add(n)
			tree.Add(n)
		}
		check(fmt.Sprintf("churn step %d", step))
	}

	// Drain to empty; both must agree the whole way down.
	for _, n := range ring.Nodes() {
		ring.Remove(n)
		tree.Remove(n)
	}
	check("after drain")
}

// TestCloneSnapshotIsolation verifies the O(1) clone: the clone answers
// from the shared snapshot until either side changes membership, and a
// change on one side never leaks to the other.
func TestCloneSnapshotIsolation(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 20}, []NodeID{"a", "b", "c"})
	c := r.Clone()
	r.Remove("b")
	if !c.Contains("b") {
		t.Error("clone lost a member after original's Remove")
	}
	c.Remove("c")
	if !r.Contains("c") {
		t.Error("original lost a member after clone's Remove")
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("original nodes = %v, want [a c]", got)
	}
	if got := c.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("clone nodes = %v, want [a b]", got)
	}
}

// TestPlanRecacheMatchesCloneRemove cross-checks the one-pass
// PlanRecache against the semantically obvious implementation (clone,
// remove, re-resolve every key).
func TestPlanRecacheMatchesCloneRemove(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 50, Seed: 7}, nil)
	for i := 0; i < 16; i++ {
		r.Add(NodeID(fmt.Sprintf("node-%04d", i)))
	}
	keys := make([]string, 5000)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos/f%05d", i)
	}
	failed := NodeID("node-0003")
	plan := r.PlanRecache(failed, keys)

	after := r.Clone()
	after.Remove(failed)
	wantMoves := map[NodeID][]string{}
	wantLost := 0
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner != failed {
			continue
		}
		newOwner, _ := after.Owner(k)
		wantMoves[newOwner] = append(wantMoves[newOwner], k)
		wantLost++
	}
	if plan.Lost != wantLost {
		t.Fatalf("Lost = %d, want %d", plan.Lost, wantLost)
	}
	if len(plan.Moves) != len(wantMoves) {
		t.Fatalf("receivers = %d, want %d", len(plan.Moves), len(wantMoves))
	}
	for n, ks := range wantMoves {
		got := plan.Moves[n]
		if len(got) != len(ks) {
			t.Fatalf("receiver %s inherits %d keys, want %d", n, len(got), len(ks))
		}
		for i := range ks {
			if got[i] != ks[i] {
				t.Fatalf("receiver %s key %d = %q, want %q", n, i, got[i], ks[i])
			}
		}
	}
}
