package hashring_test

import (
	"fmt"

	"repro/internal/hashring"
)

// The core FT-Cache flow: place files on a ring, lose a node, observe
// that only the lost node's files move — each to the clockwise
// successor that will recache it.
func Example() {
	ring := hashring.NewWithNodes(
		hashring.Config{VirtualNodes: 100, Seed: 42},
		[]hashring.NodeID{"node-0", "node-1", "node-2", "node-3"},
	)

	files := make([]string, 400)
	for i := range files {
		files[i] = fmt.Sprintf("cosmo/univ_%07d.tfrecord", i)
	}
	before := make(map[string]hashring.NodeID, len(files))
	for _, f := range files {
		before[f], _ = ring.Owner(f)
	}

	plan := ring.PlanRecache("node-1", files)
	ring.Remove("node-1")

	moved, stable := 0, true
	for _, f := range files {
		after, _ := ring.Owner(f)
		if before[f] == "node-1" {
			moved++
		} else if after != before[f] {
			stable = false
		}
	}
	fmt.Printf("lost files match the recache plan: %v\n", moved == plan.Lost)
	fmt.Printf("surviving placements untouched:   %v\n", stable)
	fmt.Printf("receivers share the burst:        %v\n", plan.Receivers() > 1)
	// Output:
	// lost files match the recache plan: true
	// surviving placements untouched:   true
	// receivers share the burst:        true
}

// Virtual nodes spread a failed node's load: with V points per node the
// lost arcs scatter across up to V distinct successors.
func Example_balance() {
	nodes := make([]hashring.NodeID, 16)
	for i := range nodes {
		nodes[i] = hashring.NodeID(fmt.Sprintf("n%02d", i))
	}
	ring := hashring.NewWithNodes(hashring.Config{VirtualNodes: 100, Seed: 1}, nodes)
	rep := ring.Balance()
	fmt.Printf("members: %d\n", rep.Nodes)
	fmt.Printf("well balanced: %v\n", rep.CoeffVar < 0.25)
	// Output:
	// members: 16
	// well balanced: true
}
