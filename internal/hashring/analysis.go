package hashring

import (
	"math"
	"sort"
)

// Arc describes one contiguous ring segment and its owner: the half-open
// hash interval (Start, End] whose keys land on the virtual point at End.
// The wrap-around segment is reported with Start > End.
type Arc struct {
	Start, End uint64
	Owner      NodeID
}

// Arcs returns every ring segment in clockwise order starting from the
// lowest virtual point. An empty ring yields nil; a single-point ring
// yields one arc covering the full circle.
func (r *Ring) Arcs() []Arc {
	pts := r.snap.Load().points
	n := len(pts)
	if n == 0 {
		return nil
	}
	arcs := make([]Arc, 0, n)
	prev := pts[n-1].hash
	for _, p := range pts {
		arcs = append(arcs, Arc{Start: prev, End: p.hash, Owner: p.node})
		prev = p.hash
	}
	return arcs
}

// arcSpan returns the clockwise length of an arc in hash units, treating
// a zero-length full-circle arc (single point) as the whole space.
func arcSpan(a Arc) uint64 {
	if a.End == a.Start {
		return math.MaxUint64 // single point owns (essentially) the full circle
	}
	return a.End - a.Start // uint64 wrap-around handles Start > End
}

// OwnershipFractions returns each member's share of the hash space — the
// expected fraction of a uniformly hashed key population it owns. With
// enough virtual nodes every share approaches 1/N, which is exactly the
// load-balance property Fig 6(b) studies.
func (r *Ring) OwnershipFractions() map[NodeID]float64 {
	arcs := r.Arcs()
	if len(arcs) == 0 {
		return nil
	}
	spans := make(map[NodeID]float64, r.Len())
	for _, a := range arcs {
		spans[a.Owner] += float64(arcSpan(a))
	}
	total := 0.0
	for _, s := range spans {
		total += s
	}
	for n, s := range spans {
		spans[n] = s / total
	}
	return spans
}

// BalanceReport summarizes how evenly the ring splits the hash space.
type BalanceReport struct {
	Nodes        int
	MeanFraction float64 // always 1/Nodes
	MaxFraction  float64
	MinFraction  float64
	// CoeffVar is stddev/mean of per-node fractions; lower is better.
	CoeffVar float64
}

// Balance computes a BalanceReport for the current membership.
func (r *Ring) Balance() BalanceReport {
	fr := r.OwnershipFractions()
	if len(fr) == 0 {
		return BalanceReport{}
	}
	rep := BalanceReport{Nodes: len(fr), MinFraction: math.Inf(1)}
	var sum, sumsq float64
	for _, f := range fr {
		sum += f
		sumsq += f * f
		if f > rep.MaxFraction {
			rep.MaxFraction = f
		}
		if f < rep.MinFraction {
			rep.MinFraction = f
		}
	}
	mean := sum / float64(len(fr))
	rep.MeanFraction = mean
	variance := sumsq/float64(len(fr)) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		rep.CoeffVar = math.Sqrt(variance) / mean
	}
	return rep
}

// SuccessorMembers returns the distinct physical nodes that would inherit
// the failed member's arcs if it were removed, in clockwise-discovery
// order. This is the theoretical upper bound on Fig 6(b)'s receiver count
// for a given virtual-node setting (actual receivers are further limited
// by which arcs contain files).
func (r *Ring) SuccessorMembers(failed NodeID) []NodeID {
	s := r.snap.Load()
	if _, ok := s.member[failed]; !ok {
		return nil
	}
	pts := s.points
	n := len(pts)
	seen := make(map[NodeID]struct{})
	var out []NodeID
	for i, p := range pts {
		if p.node != failed {
			continue
		}
		// Walk clockwise from this failed point to the next surviving
		// point, resetting the index at the wrap instead of taking a
		// modulo every step.
		j := i + 1
		if j == n {
			j = 0
		}
		for steps := 0; steps < n; steps++ {
			q := pts[j]
			j++
			if j == n {
				j = 0
			}
			if q.node == failed {
				continue
			}
			if _, dup := seen[q.node]; !dup {
				seen[q.node] = struct{}{}
				out = append(out, q.node)
			}
			break
		}
	}
	return out
}

// AssignKeys maps every key to its owner, returning per-node key counts.
// It is the bulk form of Owner used by the load-distribution experiments.
func AssignKeys(l Locator, keys []string) map[NodeID]int {
	counts := make(map[NodeID]int)
	for _, k := range keys {
		if owner, ok := l.Owner(k); ok {
			counts[owner]++
		}
	}
	return counts
}

// CountsSummary flattens a per-node count map into a sorted slice of
// counts (ascending), padding with zeros for members that own no keys so
// imbalance statistics include empty nodes.
func CountsSummary(counts map[NodeID]int, members []NodeID) []float64 {
	out := make([]float64, 0, len(members))
	for _, m := range members {
		out = append(out, float64(counts[m]))
	}
	sort.Float64s(out)
	return out
}
