package hashring

import "math"

// Weighted membership: heterogeneous clusters (e.g. KISTI Neuron's mix
// of 2.9–3.5 TB NVMe nodes, where the paper also validated FT-Cache)
// want cache load proportional to device capacity. A node's share of
// the hash space is proportional to its virtual-point count, so weights
// map to per-node virtual-node counts scaled by the configured base.

// AddWeighted inserts node with weight × VirtualNodes points (weight 1.0
// is a standard member). Weights below minWeight are clamped so every
// node keeps at least one point. Adding an existing member is a no-op.
func (r *Ring) AddWeighted(node NodeID, weight float64) {
	v := int(math.Round(weight * float64(r.cfg.VirtualNodes)))
	if v < 1 {
		v = 1
	}
	r.addPoints(node, v, true)
}

// Weight returns the effective virtual-point count of node (0 for
// non-members).
func (r *Ring) Weight(node NodeID) int {
	s := r.snap.Load()
	if _, ok := s.member[node]; !ok {
		return 0
	}
	if w, ok := s.weights[node]; ok {
		return w
	}
	return r.cfg.VirtualNodes
}

// mergePoints merges two sorted point runs in O(len(a)+len(b)) into a
// fresh slice; neither input is written (snapshots share them).
func mergePoints(a, b []point) []point {
	merged := make([]point, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if pointLessFn(a[i], b[j]) {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	return merged
}
