package hashring

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestTreeRingAgreesWithRing is the main correctness check for the LLRB
// implementation: for identical configs, both structures must compute
// identical ownership for every key, across arbitrary membership churn.
func TestTreeRingAgreesWithRing(t *testing.T) {
	cfg := Config{VirtualNodes: 37, Seed: 21}
	ring := New(cfg)
	tree := NewTree(cfg)
	keys := fileKeys(500)
	rng := rand.New(rand.NewSource(5))

	check := func(step string) {
		t.Helper()
		if ring.Len() != tree.Len() {
			t.Fatalf("%s: member count ring=%d tree=%d", step, ring.Len(), tree.Len())
		}
		if ring.PointCount() != tree.PointCount() {
			t.Fatalf("%s: point count ring=%d tree=%d", step, ring.PointCount(), tree.PointCount())
		}
		for _, k := range keys {
			ro, rok := ring.Owner(k)
			to, tok := tree.Owner(k)
			if rok != tok || ro != to {
				t.Fatalf("%s: key %q ring=(%q,%v) tree=(%q,%v)", step, k, ro, rok, to, tok)
			}
		}
	}

	check("empty")
	present := map[NodeID]bool{}
	all := nodeNames(24)
	for step := 0; step < 200; step++ {
		n := all[rng.Intn(len(all))]
		if present[n] && rng.Intn(2) == 0 {
			ring.Remove(n)
			tree.Remove(n)
			present[n] = false
		} else {
			ring.Add(n)
			tree.Add(n)
			present[n] = true
		}
		if step%20 == 0 {
			check(fmt.Sprintf("step %d", step))
		}
	}
	check("final")
}

func TestTreeRingEmptyAndIdempotent(t *testing.T) {
	tr := NewTree(Config{VirtualNodes: 5})
	if _, ok := tr.Owner("x"); ok {
		t.Error("empty tree ring should have no owner")
	}
	tr.Remove("ghost") // no-op
	tr.Add("a")
	tr.Add("a")
	if tr.Len() != 1 || tr.PointCount() != 5 {
		t.Errorf("len=%d points=%d", tr.Len(), tr.PointCount())
	}
	tr.Remove("a")
	if tr.Len() != 0 || tr.PointCount() != 0 {
		t.Errorf("after removal: len=%d points=%d", tr.Len(), tr.PointCount())
	}
	if _, ok := tr.Owner("x"); ok {
		t.Error("drained tree ring should have no owner")
	}
}

func TestTreeRingDefaultVirtualNodes(t *testing.T) {
	tr := NewTree(Config{})
	tr.Add("a")
	if tr.PointCount() != DefaultVirtualNodes {
		t.Errorf("points = %d, want %d", tr.PointCount(), DefaultVirtualNodes)
	}
}

// TestLLRBStructuralInvariants verifies red-black properties after heavy
// churn: no red node has a red left child chained (LLRB shape), no right
// red links, and perfect black balance.
func TestLLRBStructuralInvariants(t *testing.T) {
	tr := NewTreeWithNodes(Config{VirtualNodes: 50, Seed: 2}, nodeNames(20))
	rng := rand.New(rand.NewSource(9))
	all := nodeNames(20)
	for i := 0; i < 300; i++ {
		n := all[rng.Intn(len(all))]
		if rng.Intn(2) == 0 {
			tr.Remove(n)
		} else {
			tr.Add(n)
		}
		if h := checkLLRB(t, tr.root); h < 0 {
			t.Fatalf("invariant violated after op %d", i)
		}
	}
}

// checkLLRB returns the black height, or -1 on violation.
func checkLLRB(t *testing.T, n *llrbNode) int {
	t.Helper()
	if n == nil {
		return 0
	}
	if isRed(n.right) && !isRed(n.left) {
		t.Error("right-leaning red link")
		return -1
	}
	if isRed(n) && isRed(n.left) {
		t.Error("two reds in a row")
		return -1
	}
	lh := checkLLRB(t, n.left)
	rh := checkLLRB(t, n.right)
	if lh < 0 || rh < 0 {
		return -1
	}
	if lh != rh {
		t.Errorf("black-height mismatch: %d vs %d", lh, rh)
		return -1
	}
	if isRed(n) {
		return lh
	}
	return lh + 1
}

func TestTreeRingNodes(t *testing.T) {
	tr := NewTreeWithNodes(Config{VirtualNodes: 3}, nodeNames(4))
	got := map[NodeID]bool{}
	for _, n := range tr.Nodes() {
		got[n] = true
	}
	if len(got) != 4 {
		t.Errorf("Nodes() returned %d distinct members, want 4", len(got))
	}
}

func BenchmarkRingVsTree(b *testing.B) {
	cfg := Config{VirtualNodes: 100}
	nodes := nodeNames(1024)
	keys := fileKeys(1024)

	b.Run("slice/lookup", func(b *testing.B) {
		r := NewWithNodes(cfg, nodes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Owner(keys[i&1023])
		}
	})
	b.Run("tree/lookup", func(b *testing.B) {
		tr := NewTreeWithNodes(cfg, nodes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Owner(keys[i&1023])
		}
	})
	b.Run("slice/remove+add", func(b *testing.B) {
		r := NewWithNodes(cfg, nodes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := nodes[i%1024]
			r.Remove(n)
			r.Add(n)
		}
	})
	b.Run("tree/remove+add", func(b *testing.B) {
		tr := NewTreeWithNodes(cfg, nodes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := nodes[i%1024]
			tr.Remove(n)
			tr.Add(n)
		}
	})
}
