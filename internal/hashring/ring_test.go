package hashring

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func nodeNames(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(fmt.Sprintf("node-%04d", i))
	}
	return out
}

func fileKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cosmoUniverse/train/univ_%06d.tfrecord", i)
	}
	return out
}

func TestEmptyRing(t *testing.T) {
	r := New(Config{VirtualNodes: 10})
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring should report no owner")
	}
	if r.Len() != 0 || r.PointCount() != 0 {
		t.Error("empty ring should have no members or points")
	}
	if _, ok := r.Owners("x", 3); ok {
		t.Error("empty ring Owners should be not-ok")
	}
	if r.Arcs() != nil {
		t.Error("empty ring should have no arcs")
	}
	r.Remove("ghost") // must not panic
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New(Config{VirtualNodes: 4})
	r.Add("solo")
	for _, k := range fileKeys(100) {
		owner, ok := r.Owner(k)
		if !ok || owner != "solo" {
			t.Fatalf("key %q: owner=%q ok=%v", k, owner, ok)
		}
	}
}

func TestDefaultVirtualNodes(t *testing.T) {
	r := New(Config{})
	r.Add("a")
	if r.PointCount() != DefaultVirtualNodes {
		t.Errorf("points = %d, want %d", r.PointCount(), DefaultVirtualNodes)
	}
}

func TestAddIdempotent(t *testing.T) {
	r := New(Config{VirtualNodes: 8})
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 || r.PointCount() != 8 {
		t.Errorf("len=%d points=%d after duplicate add", r.Len(), r.PointCount())
	}
}

func TestRemoveRestoresPriorOwnership(t *testing.T) {
	nodes := nodeNames(8)
	r := NewWithNodes(Config{VirtualNodes: 50, Seed: 7}, nodes)
	keys := fileKeys(500)
	before := make(map[string]NodeID)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Remove(nodes[3])
	r.Add(nodes[3])
	for _, k := range keys {
		if owner, _ := r.Owner(k); owner != before[k] {
			t.Fatalf("key %q owner changed after remove+add: %q -> %q", k, before[k], owner)
		}
	}
}

// TestMinimalMovement verifies the defining consistent-hashing property
// the paper relies on (§IV-B): removing a node only reassigns the keys
// that node owned; every other key keeps its owner.
func TestMinimalMovement(t *testing.T) {
	nodes := nodeNames(16)
	r := NewWithNodes(Config{VirtualNodes: 100, Seed: 1}, nodes)
	keys := fileKeys(2000)
	before := make(map[string]NodeID, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	failed := nodes[5]
	r.Remove(failed)
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] != failed && after != before[k] {
			t.Fatalf("key %q moved from surviving node %q to %q", k, before[k], after)
		}
		if after == failed {
			t.Fatalf("key %q still owned by removed node", k)
		}
	}
}

func TestMinimalMovementQuick(t *testing.T) {
	// Property over random memberships and victims.
	f := func(nNodes uint8, victim uint8, seed uint64) bool {
		n := int(nNodes)%30 + 2 // 2..31 nodes
		nodes := nodeNames(n)
		r := NewWithNodes(Config{VirtualNodes: 20, Seed: seed}, nodes)
		failed := nodes[int(victim)%n]
		keys := fileKeys(200)
		before := make([]NodeID, len(keys))
		for i, k := range keys {
			before[i], _ = r.Owner(k)
		}
		r.Remove(failed)
		for i, k := range keys {
			after, _ := r.Owner(k)
			if before[i] != failed && after != before[i] {
				return false
			}
			if after == failed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOwnersDistinctAndPrefixed(t *testing.T) {
	nodes := nodeNames(10)
	r := NewWithNodes(Config{VirtualNodes: 30}, nodes)
	for _, k := range fileKeys(50) {
		owners, ok := r.Owners(k, 4)
		if !ok || len(owners) != 4 {
			t.Fatalf("Owners(%q,4) = %v ok=%v", k, owners, ok)
		}
		primary, _ := r.Owner(k)
		if owners[0] != primary {
			t.Fatalf("Owners[0]=%q != Owner=%q", owners[0], primary)
		}
		seen := map[NodeID]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %q in %v", o, owners)
			}
			seen[o] = true
		}
	}
}

func TestOwnersMoreThanMembers(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 10}, nodeNames(3))
	owners, ok := r.Owners("k", 10)
	if !ok || len(owners) != 3 {
		t.Fatalf("want all 3 members, got %v", owners)
	}
}

func TestSuccessorsExcludeOwner(t *testing.T) {
	nodes := nodeNames(8)
	r := NewWithNodes(Config{VirtualNodes: 30}, nodes)
	for _, k := range fileKeys(50) {
		owner, _ := r.Owner(k)
		succ, ok := r.Successors(k, 3)
		if !ok || len(succ) != 3 {
			t.Fatalf("Successors(%q,3) = %v ok=%v", k, succ, ok)
		}
		owners, _ := r.Owners(k, 4)
		for i, s := range succ {
			if s == owner {
				t.Fatalf("successor %q equals owner for key %q", s, k)
			}
			if s != owners[i+1] {
				t.Fatalf("Successors order diverges from Owners for %q: %v vs %v", k, succ, owners)
			}
		}
	}
	if succ, ok := New(Config{}).Successors("k", 2); ok || succ != nil {
		t.Fatalf("empty ring Successors = %v ok=%v, want nil/false", succ, ok)
	}
}

func TestBalanceImprovesWithVirtualNodes(t *testing.T) {
	nodes := nodeNames(32)
	cvAt := func(v int) float64 {
		return NewWithNodes(Config{VirtualNodes: v, Seed: 3}, nodes).Balance().CoeffVar
	}
	low, high := cvAt(1), cvAt(200)
	if high >= low {
		t.Errorf("CV with 200 vnodes (%.3f) should beat CV with 1 vnode (%.3f)", high, low)
	}
	if high > 0.25 {
		t.Errorf("CV with 200 vnodes too high: %.3f", high)
	}
}

func TestOwnershipFractionsSumToOne(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 64}, nodeNames(9))
	sum := 0.0
	for _, f := range r.OwnershipFractions() {
		if f <= 0 {
			t.Fatalf("non-positive fraction %v", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestArcsCoverCircleExactly(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 13}, nodeNames(7))
	arcs := r.Arcs()
	if len(arcs) != 7*13 {
		t.Fatalf("arc count = %d, want %d", len(arcs), 7*13)
	}
	var sum uint64
	for _, a := range arcs {
		sum += a.End - a.Start // wraps mod 2^64
	}
	// The spans partition the full 2^64 circle, so their uint64 sum wraps
	// to exactly 0.
	if sum != 0 {
		t.Errorf("arc spans sum to %d mod 2^64, want 0", sum)
	}
}

func TestPlanRecacheInvariants(t *testing.T) {
	nodes := nodeNames(20)
	r := NewWithNodes(Config{VirtualNodes: 100, Seed: 9}, nodes)
	keys := fileKeys(3000)
	failed := nodes[11]

	ownedByFailed := 0
	for _, k := range keys {
		if o, _ := r.Owner(k); o == failed {
			ownedByFailed++
		}
	}

	plan := r.PlanRecache(failed, keys)
	if plan.Failed != failed {
		t.Errorf("plan.Failed = %q", plan.Failed)
	}
	if plan.Lost != ownedByFailed {
		t.Errorf("plan.Lost = %d, want %d", plan.Lost, ownedByFailed)
	}
	total := 0
	for receiver, ks := range plan.Moves {
		if receiver == failed {
			t.Error("failed node cannot be a receiver")
		}
		if !r.Contains(receiver) {
			t.Errorf("receiver %q not a member", receiver)
		}
		if len(ks) == 0 {
			t.Errorf("receiver %q with zero keys should not appear", receiver)
		}
		total += len(ks)
	}
	if total != plan.Lost {
		t.Errorf("moves total %d != lost %d", total, plan.Lost)
	}
	if plan.Receivers() != len(plan.Moves) {
		t.Error("Receivers() mismatch")
	}
	if got := len(plan.FilesPerReceiver()); got != len(plan.Moves) {
		t.Errorf("FilesPerReceiver length = %d", got)
	}

	// Every receiver must be one of the clockwise successor members of the
	// failed node's points.
	successors := map[NodeID]bool{}
	for _, s := range r.SuccessorMembers(failed) {
		successors[s] = true
	}
	for receiver := range plan.Moves {
		if !successors[receiver] {
			t.Errorf("receiver %q is not a ring successor of %q", receiver, failed)
		}
	}

	// The plan must match actually removing the node.
	after := r.Clone()
	after.Remove(failed)
	for receiver, ks := range plan.Moves {
		for _, k := range ks {
			if o, _ := after.Owner(k); o != receiver {
				t.Fatalf("key %q: plan says %q, post-removal ring says %q", k, receiver, o)
			}
		}
	}
}

func TestPlanRecachePanicsForNonMember(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 4}, nodeNames(3))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-member")
		}
	}()
	r.PlanRecache("ghost", fileKeys(10))
}

func TestCloneIsIndependent(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 16}, nodeNames(4))
	c := r.Clone()
	c.Remove("node-0000")
	if !r.Contains("node-0000") {
		t.Error("mutating clone affected original")
	}
	if c.Len() != 3 || r.Len() != 4 {
		t.Errorf("lens: clone=%d orig=%d", c.Len(), r.Len())
	}
}

func TestSeedChangesLayout(t *testing.T) {
	nodes := nodeNames(10)
	a := NewWithNodes(Config{VirtualNodes: 50, Seed: 1}, nodes)
	b := NewWithNodes(Config{VirtualNodes: 50, Seed: 2}, nodes)
	diff := 0
	for _, k := range fileKeys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			diff++
		}
	}
	if diff < 300 {
		t.Errorf("only %d/500 keys moved between seeds; layouts too correlated", diff)
	}
}

func TestConcurrentLookupsDuringMembershipChange(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 50}, nodeNames(16))
	keys := fileKeys(200)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := r.Owner(keys[rng.Intn(len(keys))]); !ok {
					t.Error("lookup failed on non-empty ring")
					return
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		n := NodeID(fmt.Sprintf("node-%04d", i%16))
		r.Remove(n)
		r.Add(n)
	}
	close(stop)
	wg.Wait()
	if r.Len() != 16 {
		t.Errorf("membership = %d after churn, want 16", r.Len())
	}
}

func TestSuccessorMembersExcludesFailedAndDedups(t *testing.T) {
	r := NewWithNodes(Config{VirtualNodes: 30}, nodeNames(8))
	succ := r.SuccessorMembers("node-0002")
	if len(succ) == 0 {
		t.Fatal("expected successors")
	}
	seen := map[NodeID]bool{}
	for _, s := range succ {
		if s == "node-0002" {
			t.Error("failed node appears as its own successor")
		}
		if seen[s] {
			t.Errorf("duplicate successor %q", s)
		}
		seen[s] = true
	}
	if r.SuccessorMembers("ghost") != nil {
		t.Error("non-member should have nil successors")
	}
}

func TestAssignKeysAndCountsSummary(t *testing.T) {
	nodes := nodeNames(5)
	r := NewWithNodes(Config{VirtualNodes: 40}, nodes)
	keys := fileKeys(1000)
	counts := AssignKeys(r, keys)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(keys) {
		t.Errorf("assigned %d keys, want %d", total, len(keys))
	}
	summary := CountsSummary(counts, nodes)
	if len(summary) != len(nodes) {
		t.Errorf("summary length %d, want %d", len(summary), len(nodes))
	}
	for i := 1; i < len(summary); i++ {
		if summary[i-1] > summary[i] {
			t.Error("summary not sorted ascending")
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d/v=100", n), func(b *testing.B) {
			r := NewWithNodes(Config{VirtualNodes: 100}, nodeNames(n))
			keys := fileKeys(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Owner(keys[i&1023])
			}
		})
	}
}

func BenchmarkRingBuild(b *testing.B) {
	for _, v := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("nodes=1024/v=%d", v), func(b *testing.B) {
			nodes := nodeNames(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewWithNodes(Config{VirtualNodes: v}, nodes)
			}
		})
	}
}

func BenchmarkRingRemove(b *testing.B) {
	nodes := nodeNames(1024)
	base := NewWithNodes(Config{VirtualNodes: 100}, nodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := base.Clone()
		r.Remove(nodes[i%1024])
	}
}
