package hashring

import (
	"math"
	"testing"
)

func TestWeightedOwnershipProportional(t *testing.T) {
	r := New(Config{VirtualNodes: 200, Seed: 4})
	r.AddWeighted("big", 2.0)   // e.g. 3.5 TB NVMe node
	r.AddWeighted("small", 1.0) // e.g. 1.75 TB node
	fr := r.OwnershipFractions()
	ratio := fr["big"] / fr["small"]
	if math.Abs(ratio-2.0) > 0.4 {
		t.Errorf("ownership ratio = %.2f, want ≈ 2.0", ratio)
	}
	if r.Weight("big") != 400 || r.Weight("small") != 200 {
		t.Errorf("weights = %d, %d", r.Weight("big"), r.Weight("small"))
	}
	if r.PointCount() != 600 {
		t.Errorf("points = %d", r.PointCount())
	}
}

func TestWeightedKeyAssignment(t *testing.T) {
	r := New(Config{VirtualNodes: 150, Seed: 9})
	r.AddWeighted("cap35", 1.0)
	r.AddWeighted("cap70", 2.0)
	counts := AssignKeys(r, fileKeys(6000))
	ratio := float64(counts["cap70"]) / float64(counts["cap35"])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("key ratio = %.2f, want ≈ 2", ratio)
	}
}

func TestWeightedClampAndIdempotence(t *testing.T) {
	r := New(Config{VirtualNodes: 100})
	r.AddWeighted("tiny", 0.0001) // clamps to 1 point
	if r.Weight("tiny") != 1 || r.PointCount() != 1 {
		t.Errorf("weight=%d points=%d", r.Weight("tiny"), r.PointCount())
	}
	r.AddWeighted("tiny", 5.0) // duplicate add: no-op
	if r.PointCount() != 1 {
		t.Error("duplicate AddWeighted changed the ring")
	}
	if r.Weight("ghost") != 0 {
		t.Error("non-member weight should be 0")
	}
}

func TestWeightedRemoveAndReAdd(t *testing.T) {
	r := New(Config{VirtualNodes: 100})
	r.AddWeighted("a", 3.0)
	r.Add("b") // plain member: default weight
	if r.Weight("b") != 100 {
		t.Errorf("plain member weight = %d", r.Weight("b"))
	}
	r.Remove("a")
	if r.Weight("a") != 0 || r.PointCount() != 100 {
		t.Errorf("after remove: weight=%d points=%d", r.Weight("a"), r.PointCount())
	}
	// Re-adding unweighted gives the default count.
	r.Add("a")
	if r.Weight("a") != 100 || r.PointCount() != 200 {
		t.Errorf("after re-add: weight=%d points=%d", r.Weight("a"), r.PointCount())
	}
}

func TestWeightedMinimalMovementStillHolds(t *testing.T) {
	r := New(Config{VirtualNodes: 80, Seed: 2})
	r.AddWeighted("w1", 1.0)
	r.AddWeighted("w2", 2.0)
	r.AddWeighted("w3", 0.5)
	r.Add("w4")
	keys := fileKeys(1500)
	before := make(map[string]NodeID)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Remove("w2")
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] != "w2" && after != before[k] {
			t.Fatalf("weighted removal moved key %q owned by %q", k, before[k])
		}
	}
}

func TestWeightedCloneCopiesWeights(t *testing.T) {
	r := New(Config{VirtualNodes: 50})
	r.AddWeighted("x", 2.0)
	c := r.Clone()
	if c.Weight("x") != 100 {
		t.Errorf("clone weight = %d", c.Weight("x"))
	}
	c.Remove("x")
	if r.Weight("x") != 100 {
		t.Error("clone removal affected original weights")
	}
}
