// Package memtier is the RAM tier of the FT-Cache storage stack: a
// sharded in-memory hot-object cache that sits in front of the NVMe
// store on the server read path (Hoard-style — RAM above local flash
// above the PFS).
//
// Only published-hot objects are admitted (the server gates Admit on
// the loadctl hot-key sketch), so the tier's byte budget is spent
// exclusively on the head of the access distribution. Hits serve
// zero-copy: Get returns a refcounted Lease into the tier's pooled
// buffers, which the response writer holds until the coalesced flush
// has the bytes on the wire — an evicted entry's buffer returns to the
// pool only after the last lease drops.
//
// Accounting mirrors storage.NVMe: a single global atomic byte budget
// across power-of-two shards (per-shard mutex + map + LRU), per-shard
// atomic byte/object mirrors for lock-free telemetry, and cross-shard
// eviction spill so one shard's admit pressure cannot strand budget in
// the others. Demotion is RAM→NVMe→PFS: every eviction hands the
// object to the OnDemote callback, which the server uses to guarantee
// the next tier down still holds it before the RAM copy dies.
package memtier

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/xhash"
)

// DefaultShards matches storage.DefaultNVMeShards: enough to spread a
// busy node's request goroutines across independent locks.
const DefaultShards = 16

// shardSeed decorrelates the shard-pick hash from the consistent-hash
// ring's key hash (same constant as the NVMe store, same reason).
const shardSeed = 0x9E3779B97F4A7C15

// OnDemote is called for every object evicted by admission pressure,
// outside any shard lock, with the object's bytes still valid for the
// duration of the call. The server's demotion hook re-fills NVMe when
// the object is no longer resident there, completing the RAM→NVMe→PFS
// chain. Invalidate and Clear do NOT demote: an invalidated object is
// being removed because its bytes are no longer true.
type OnDemote func(path string, data []byte)

// Tier is the sharded RAM cache. The zero value is not usable; use New.
type Tier struct {
	capacity int64
	used     atomic.Int64
	shards   []shard
	mask     uint64
	onDemote OnDemote // nil = no demotion hook

	hits          atomic.Int64
	misses        atomic.Int64
	admits        atomic.Int64
	evictions     atomic.Int64
	demotions     atomic.Int64 // evictions that ran the OnDemote hook
	invalidations atomic.Int64
	leases        atomic.Int64 // currently outstanding leases (gauge)
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
	// bytes/objects mirror the shard's content for lock-free telemetry
	// reads; written under mu, loaded without it.
	bytes   atomic.Int64
	objects atomic.Int64
	_       [40]byte // pad to a cache line so shard locks don't false-share
}

// entry is one resident object. buf holds one reference for residency;
// each outstanding Lease holds one more.
type entry struct {
	path string
	buf  *buffer
}

// New creates a tier with the given byte capacity and DefaultShards
// shards. capacity <= 0 disables admission entirely (Admit refuses
// everything) — a disabled tier is still safe to Get/Invalidate on.
func New(capacity int64, onDemote OnDemote) *Tier {
	return NewShards(capacity, DefaultShards, onDemote)
}

// NewShards is New with an explicit shard count (rounded up to a power
// of two; non-positive selects DefaultShards). shards=1 gives exact
// global LRU order, which the eviction-order tests rely on.
func NewShards(capacity int64, shards int, onDemote OnDemote) *Tier {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Tier{
		capacity: capacity,
		shards:   make([]shard, n),
		mask:     uint64(n - 1),
		onDemote: onDemote,
	}
	for i := range t.shards {
		t.shards[i].items = make(map[string]*list.Element)
		t.shards[i].lru = list.New()
	}
	return t
}

func (t *Tier) shardFor(path string) *shard {
	return &t.shards[xhash.XXH64String(path, shardSeed)&t.mask]
}

// Get returns a zero-copy lease on path's bytes, refreshing recency.
// ok=false means not resident (and the returned lease is nil). The
// caller owns exactly one Release on the returned lease; the bytes
// stay valid — even across a concurrent eviction or Invalidate — until
// that Release.
//
//ftc:hotpath
func (t *Tier) Get(path string) (*Lease, bool) {
	sh := t.shardFor(path)
	sh.mu.Lock() //ftclint:ignore hotpathlock per-shard LRU lock is the sharded design; contention is 1/N by construction
	el, ok := sh.items[path]
	if !ok {
		sh.mu.Unlock()
		t.misses.Add(1)
		return nil, false
	}
	sh.lru.MoveToFront(el)
	buf := el.Value.(*entry).buf
	buf.refs.Add(1) // lease reference, taken under the shard lock
	sh.mu.Unlock()
	t.hits.Add(1)
	t.leases.Add(1)
	return &Lease{tier: t, buf: buf}, true
}

// Has reports residency without perturbing recency or counters.
func (t *Tier) Has(path string) bool {
	sh := t.shardFor(path)
	sh.mu.Lock()
	_, ok := sh.items[path]
	sh.mu.Unlock()
	return ok
}

// Admit copies data into a pooled buffer and makes it resident,
// evicting least-recently-used objects (own shard first, then spilling
// across the others) until the global budget is met. Objects larger
// than the whole tier are refused (false) — they live on NVMe only.
// Admitting an already-resident path replaces its bytes.
func (t *Tier) Admit(path string, data []byte) bool {
	size := int64(len(data))
	if t.capacity <= 0 || size > t.capacity {
		return false
	}
	buf := acquireBuffer(len(data))
	copy(buf.b, data)
	sh := t.shardFor(path)
	var demote []*entry
	sh.mu.Lock()
	kept := t.insertLocked(sh, path, buf, &demote)
	t.evictShardLocked(sh, kept, &demote)
	sh.mu.Unlock()
	if t.used.Load() > t.capacity {
		t.evictSpill(sh, kept, &demote)
	}
	t.admits.Add(1)
	t.finishEvictions(demote)
	return true
}

// insertLocked stores or replaces path in sh (lock held), maintaining
// the accounting, and returns the entry's LRU element. A replaced
// buffer joins demote-less teardown via out (no demotion: the replacer
// is the fresher copy).
func (t *Tier) insertLocked(sh *shard, path string, buf *buffer, out *[]*entry) *list.Element {
	size := int64(len(buf.b))
	if el, ok := sh.items[path]; ok {
		old := el.Value.(*entry)
		t.used.Add(size - int64(len(old.buf.b)))
		sh.bytes.Add(size - int64(len(old.buf.b)))
		// The old buffer dies without demotion — mark it so
		// finishEvictions drops it straight to the pool.
		*out = append(*out, &entry{path: "", buf: old.buf})
		el.Value = &entry{path: path, buf: buf}
		sh.lru.MoveToFront(el)
		return el
	}
	el := sh.lru.PushFront(&entry{path: path, buf: buf})
	sh.items[path] = el
	t.used.Add(size)
	sh.bytes.Add(size)
	sh.objects.Add(1)
	return el
}

// evictShardLocked evicts LRU-order objects from sh (lock held) until
// the global budget is met or only keep remains, collecting victims
// into out for demotion outside the lock.
func (t *Tier) evictShardLocked(sh *shard, keep *list.Element, out *[]*entry) {
	for t.used.Load() > t.capacity {
		tail := sh.lru.Back()
		if tail != nil && tail == keep {
			tail = tail.Prev()
		}
		if tail == nil {
			return
		}
		ent := tail.Value.(*entry)
		sh.lru.Remove(tail)
		delete(sh.items, ent.path)
		size := int64(len(ent.buf.b))
		t.used.Add(-size)
		sh.bytes.Add(-size)
		sh.objects.Add(-1)
		t.evictions.Add(1)
		*out = append(*out, ent)
	}
}

// evictSpill walks the other shards (one lock at a time) until the
// budget is met; from is revisited last with keep still protected.
func (t *Tier) evictSpill(from *shard, keep *list.Element, out *[]*entry) {
	start := 0
	for i := range t.shards {
		if &t.shards[i] == from {
			start = i
			break
		}
	}
	for off := 1; off <= len(t.shards); off++ {
		if t.used.Load() <= t.capacity {
			return
		}
		sh := &t.shards[(start+off)&int(t.mask)]
		k := keep
		if sh != from {
			k = nil
		}
		sh.mu.Lock()
		t.evictShardLocked(sh, k, out)
		sh.mu.Unlock()
	}
}

// finishEvictions runs outside every shard lock: victims with a path
// are offered to the demotion hook while their residency reference
// still pins the bytes, then the reference drops — the buffer returns
// to the pool once the last lease (if any) releases.
func (t *Tier) finishEvictions(victims []*entry) {
	for _, ent := range victims {
		if ent.path != "" && t.onDemote != nil {
			t.onDemote(ent.path, ent.buf.b)
			t.demotions.Add(1)
		}
		ent.buf.decRef()
	}
}

// Invalidate removes path if resident, reporting whether it was. The
// bytes are torn down without demotion: invalidation means the object
// is stale (ownership moved, or a writer replaced it), so pushing the
// old bytes down a tier would resurrect them. Outstanding leases stay
// valid until released.
func (t *Tier) Invalidate(path string) bool {
	sh := t.shardFor(path)
	sh.mu.Lock()
	el, ok := sh.items[path]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	ent := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.items, path)
	size := int64(len(ent.buf.b))
	t.used.Add(-size)
	sh.bytes.Add(-size)
	sh.objects.Add(-1)
	sh.mu.Unlock()
	t.invalidations.Add(1)
	ent.buf.decRef()
	return true
}

// Clear drops every resident object without demotion — the crash /
// re-own path (a node losing its tier on restart starts empty).
func (t *Tier) Clear() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		var bytes int64
		victims := make([]*buffer, 0, len(sh.items))
		for _, el := range sh.items {
			ent := el.Value.(*entry)
			bytes += int64(len(ent.buf.b))
			victims = append(victims, ent.buf)
		}
		sh.items = make(map[string]*list.Element)
		sh.lru.Init()
		t.used.Add(-bytes)
		sh.bytes.Add(-bytes)
		sh.objects.Store(0)
		sh.mu.Unlock()
		for _, b := range victims {
			b.decRef()
		}
	}
}

// Capacity returns the configured byte budget (<= 0 = disabled).
func (t *Tier) Capacity() int64 { return t.capacity }

// StatsAtomic returns object count and resident bytes from the atomic
// mirrors — lock-free, for telemetry scrapes.
//
//ftc:hotpath
func (t *Tier) StatsAtomic() (objects, bytes int64) {
	for i := range t.shards {
		objects += t.shards[i].objects.Load()
	}
	return objects, t.used.Load()
}

// ShardBytes returns per-shard byte occupancy (lock-free).
func (t *Tier) ShardBytes() []int64 {
	out := make([]int64, len(t.shards))
	for i := range t.shards {
		out[i] = t.shards[i].bytes.Load()
	}
	return out
}

// Counters returns the cumulative hit/miss/admit/eviction/demotion/
// invalidation counts.
func (t *Tier) Counters() (hits, misses, admits, evictions, demotions, invalidations int64) {
	return t.hits.Load(), t.misses.Load(), t.admits.Load(),
		t.evictions.Load(), t.demotions.Load(), t.invalidations.Load()
}

// ActiveLeases returns the number of leases handed out by Get and not
// yet released — the leak observable the chaos soak asserts is zero
// once traffic drains.
func (t *Tier) ActiveLeases() int64 { return t.leases.Load() }
