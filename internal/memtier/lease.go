package memtier

import (
	"sync"
	"sync/atomic"
)

// buffer is one pooled, refcounted backing array. refs starts at 1
// (the residency reference); each outstanding Lease adds one. The
// bytes return to the pool when the count reaches zero — so an entry
// evicted mid-read keeps its bytes alive until the reader's flush
// completes, without copying.
type buffer struct {
	b    []byte
	refs atomic.Int32
}

// maxPooledBuffer caps what the pool retains, mirroring the wire
// package's bound: one giant object must not pin a slab for the
// process lifetime.
const maxPooledBuffer = 1 << 20

var bufferPool = sync.Pool{New: func() any { return new(buffer) }}

func acquireBuffer(n int) *buffer {
	buf := bufferPool.Get().(*buffer)
	if cap(buf.b) < n {
		buf.b = make([]byte, n)
	} else {
		buf.b = buf.b[:n]
	}
	buf.refs.Store(1)
	return buf
}

func (buf *buffer) decRef() {
	if buf.refs.Add(-1) != 0 {
		return
	}
	if cap(buf.b) > maxPooledBuffer {
		buf.b = nil // let the GC take the oversized backing array
	}
	bufferPool.Put(buf)
}

// Lease is a zero-copy reference into the tier's pooled buffers,
// returned by Get. Exactly one Release per lease: after Release the
// bytes (and anything aliasing them) must no longer be touched — the
// backing array may be reused for a different object immediately. The
// poollease analyzer enforces the exactly-one-Release discipline at
// lint time, the same way it does for wire.ReadFramePooled.
type Lease struct {
	tier     *Tier
	buf      *buffer
	released atomic.Bool
}

// Bytes returns the leased object bytes. Read-only.
func (l *Lease) Bytes() []byte { return l.buf.b }

// Size returns the object's byte length.
func (l *Lease) Size() int64 { return int64(len(l.buf.b)) }

// Release drops the lease. Double-release is a no-op (defensive, like
// wire.Buf), but callers must not rely on it — the analyzer flags
// paths that release twice as readily as paths that never release.
func (l *Lease) Release() {
	if l == nil || l.released.Swap(true) {
		return
	}
	l.tier.leases.Add(-1)
	l.buf.decRef()
}
