package memtier

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func get(t *testing.T, tier *Tier, path string) []byte {
	t.Helper()
	lease, ok := tier.Get(path)
	if !ok {
		t.Fatalf("Get(%q): not resident", path)
	}
	defer lease.Release()
	return append([]byte(nil), lease.Bytes()...)
}

func TestAdmitGetRoundtrip(t *testing.T) {
	tier := New(1<<20, nil)
	if !tier.Admit("a", []byte("alpha")) {
		t.Fatal("Admit refused under budget")
	}
	if got := get(t, tier, "a"); string(got) != "alpha" {
		t.Fatalf("got %q, want alpha", got)
	}
	if _, ok := tier.Get("missing"); ok {
		t.Fatal("Get on absent path reported resident")
	}
	hits, misses, admits, _, _, _ := tier.Counters()
	if hits != 1 || misses != 1 || admits != 1 {
		t.Fatalf("counters hits=%d misses=%d admits=%d, want 1/1/1", hits, misses, admits)
	}
	if tier.ActiveLeases() != 0 {
		t.Fatalf("active leases %d after release", tier.ActiveLeases())
	}
}

func TestAdmitReplacesBytes(t *testing.T) {
	tier := New(1<<20, nil)
	tier.Admit("a", []byte("old"))
	tier.Admit("a", []byte("newer"))
	if got := get(t, tier, "a"); string(got) != "newer" {
		t.Fatalf("got %q, want newer", got)
	}
	objects, bytes := tier.StatsAtomic()
	if objects != 1 || bytes != 5 {
		t.Fatalf("stats objects=%d bytes=%d, want 1/5", objects, bytes)
	}
}

func TestCapacityRefusals(t *testing.T) {
	tier := New(10, nil)
	if tier.Admit("big", make([]byte, 11)) {
		t.Fatal("admitted object larger than tier")
	}
	disabled := New(0, nil)
	if disabled.Admit("a", []byte("x")) {
		t.Fatal("disabled tier admitted")
	}
	if _, ok := disabled.Get("a"); ok {
		t.Fatal("disabled tier reported residency")
	}
}

func TestLRUEvictionOrderSingleShard(t *testing.T) {
	var demoted []string
	tier := NewShards(30, 1, func(path string, data []byte) {
		demoted = append(demoted, path)
	})
	tier.Admit("a", make([]byte, 10))
	tier.Admit("b", make([]byte, 10))
	tier.Admit("c", make([]byte, 10))
	// Touch a so b is the LRU victim.
	lease, _ := tier.Get("a")
	lease.Release()
	tier.Admit("d", make([]byte, 10))
	if tier.Has("b") {
		t.Fatal("b survived eviction")
	}
	for _, p := range []string{"a", "c", "d"} {
		if !tier.Has(p) {
			t.Fatalf("%s missing", p)
		}
	}
	if len(demoted) != 1 || demoted[0] != "b" {
		t.Fatalf("demotions %v, want [b]", demoted)
	}
	_, _, _, evictions, demotions, _ := tier.Counters()
	if evictions != 1 || demotions != 1 {
		t.Fatalf("evictions=%d demotions=%d, want 1/1", evictions, demotions)
	}
}

func TestCrossShardSpill(t *testing.T) {
	// Budget for exactly one object: every admit must be able to evict
	// victims on *other* shards, or the tier would overshoot.
	tier := NewShards(10, 8, nil)
	for i := 0; i < 64; i++ {
		if !tier.Admit(fmt.Sprintf("f%04d", i), make([]byte, 10)) {
			t.Fatalf("admit %d refused", i)
		}
		if _, bytes := tier.StatsAtomic(); bytes > 10 {
			t.Fatalf("budget overshoot: %d bytes resident", bytes)
		}
	}
	objects, bytes := tier.StatsAtomic()
	if objects != 1 || bytes != 10 {
		t.Fatalf("stats objects=%d bytes=%d, want 1/10", objects, bytes)
	}
}

func TestLeaseOutlivesEviction(t *testing.T) {
	tier := NewShards(10, 1, nil)
	tier.Admit("a", []byte("0123456789"))
	lease, ok := tier.Get("a")
	if !ok {
		t.Fatal("a not resident")
	}
	// Evict a while the lease is live, then admit more objects that
	// would recycle a's buffer if the refcount were broken.
	tier.Admit("b", []byte("bbbbbbbbbb"))
	if tier.Has("a") {
		t.Fatal("a survived eviction")
	}
	tier.Admit("c", []byte("cccccccccc"))
	if got := string(lease.Bytes()); got != "0123456789" {
		t.Fatalf("leased bytes corrupted after eviction: %q", got)
	}
	lease.Release()
	if tier.ActiveLeases() != 0 {
		t.Fatalf("active leases %d", tier.ActiveLeases())
	}
}

func TestLeaseOutlivesInvalidate(t *testing.T) {
	tier := New(1<<20, nil)
	tier.Admit("a", []byte("payload"))
	lease, _ := tier.Get("a")
	if !tier.Invalidate("a") {
		t.Fatal("Invalidate missed resident path")
	}
	if tier.Invalidate("a") {
		t.Fatal("double Invalidate reported resident")
	}
	if got := string(lease.Bytes()); got != "payload" {
		t.Fatalf("leased bytes corrupted after invalidate: %q", got)
	}
	lease.Release()
	_, _, _, _, demotions, invalidations := tier.Counters()
	if demotions != 0 || invalidations != 1 {
		t.Fatalf("demotions=%d invalidations=%d, want 0/1", demotions, invalidations)
	}
}

func TestInvalidateDoesNotDemote(t *testing.T) {
	demoted := 0
	tier := New(1<<20, func(string, []byte) { demoted++ })
	tier.Admit("a", []byte("x"))
	tier.Invalidate("a")
	tier.Admit("b", []byte("y"))
	tier.Clear()
	if demoted != 0 {
		t.Fatalf("invalidate/clear ran the demotion hook %d times", demoted)
	}
}

func TestClear(t *testing.T) {
	tier := New(1<<20, nil)
	for i := 0; i < 100; i++ {
		tier.Admit(fmt.Sprintf("f%d", i), make([]byte, 100))
	}
	lease, _ := tier.Get("f0")
	tier.Clear()
	objects, bytes := tier.StatsAtomic()
	if objects != 0 || bytes != 0 {
		t.Fatalf("stats after Clear: objects=%d bytes=%d", objects, bytes)
	}
	if len(lease.Bytes()) != 100 {
		t.Fatal("lease invalidated by Clear")
	}
	lease.Release()
}

func TestDoubleReleaseIsNoOp(t *testing.T) {
	tier := New(1<<20, nil)
	tier.Admit("a", []byte("x"))
	lease, _ := tier.Get("a")
	lease.Release()
	lease.Release()
	if tier.ActiveLeases() != 0 {
		t.Fatalf("active leases %d after double release", tier.ActiveLeases())
	}
	// The buffer must still be resident and intact.
	if got := get(t, tier, "a"); string(got) != "x" {
		t.Fatalf("resident bytes corrupted: %q", got)
	}
}

// TestConcurrentChurn hammers admit/get/invalidate/clear from many
// goroutines under -race, checking that leased bytes always match the
// content their path implies (each path's bytes are a function of its
// name, so a recycled buffer serving the wrong object is detected).
func TestConcurrentChurn(t *testing.T) {
	tier := NewShards(1<<14, 4, nil)
	content := func(i int) []byte {
		b := make([]byte, 128)
		for j := range b {
			b[j] = byte(i)
		}
		return b
	}
	const keys = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 2000; n++ {
				i := rng.Intn(keys)
				path := fmt.Sprintf("f%04d", i)
				switch rng.Intn(10) {
				case 0:
					tier.Invalidate(path)
				case 1, 2, 3:
					tier.Admit(path, content(i))
				default:
					if lease, ok := tier.Get(path); ok {
						b := lease.Bytes()
						if len(b) != 128 || b[0] != byte(i) || b[127] != byte(i) {
							t.Errorf("wrong bytes for %s: len=%d first=%d", path, len(b), b[0])
						}
						lease.Release()
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if tier.ActiveLeases() != 0 {
		t.Fatalf("leaked leases: %d", tier.ActiveLeases())
	}
	if _, bytes := tier.StatsAtomic(); bytes > 1<<14 {
		t.Fatalf("budget overshoot: %d", bytes)
	}
}
