package loadctl

import (
	"sync/atomic"
	"time"
)

// DefaultAdmissionWait bounds how long a queued request waits for a
// service slot before being shed. It is deliberately short: the point
// of shedding is to convert queueing delay the client cannot see into
// an explicit overload signal the client can act on (redirect to a
// replica or the PFS) — a long queue would just be invisible latency.
const DefaultAdmissionWait = 2 * time.Millisecond

// Limiter is the server-side admission controller: at most `limit`
// requests are served concurrently, at most `queue` more may wait (for
// up to maxWait) for a slot, and everything beyond that is shed
// immediately. Shed requests get an explicit overload status on the
// wire — never a silent timeout — so the client learns "alive but
// busy", which is routing information, not failure evidence.
type Limiter struct {
	tokens  chan struct{} // service slots
	waiters chan struct{} // queue slots
	maxWait time.Duration

	// soft, when in (0, cap(tokens)), tightens the effective concurrency
	// limit at runtime (adaptive policy knob): a request arriving while
	// held slots >= soft is shed immediately. The check is a lock-free
	// length read, so enforcement is approximate — concurrent arrivals
	// can overshoot by their own count, bounded by cap(tokens). 0 = use
	// the constructed hard limit. The hard channel capacity never moves,
	// so in-flight holders and ReleaseN accounting are unaffected.
	soft atomic.Int64

	admitted atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
}

// NewLimiter creates a limiter with `limit` concurrent service slots
// and a `queue`-deep wait line bounded by maxWait. limit <= 0 returns
// nil — the "admission control disabled" sentinel callers check for.
// queue < 0 selects limit; maxWait <= 0 selects DefaultAdmissionWait.
func NewLimiter(limit, queue int, maxWait time.Duration) *Limiter {
	if limit <= 0 {
		return nil
	}
	if queue < 0 {
		queue = limit
	}
	if maxWait <= 0 {
		maxWait = DefaultAdmissionWait
	}
	return &Limiter{
		tokens:  make(chan struct{}, limit),
		waiters: make(chan struct{}, queue),
		maxWait: maxWait,
	}
}

// Acquire claims a service slot, waiting in the bounded queue if the
// server is at its concurrency limit. It returns false when the request
// should be shed: the queue is full, or no slot freed within maxWait.
// Every true return must be paired with a Release.
func (l *Limiter) Acquire() bool {
	ok, _ := l.AcquireWait()
	return ok
}

// AcquireWait is Acquire plus the admission-queue wait it cost: zero on
// the uncontended fast path (measured without a clock read — request
// tracing must not tax the path it observes), the measured queueing
// delay when the request had to line up. The wait is reported on shed
// requests too (how long the request was held before being turned
// away).
func (l *Limiter) AcquireWait() (bool, time.Duration) {
	if l.overSoft() {
		l.shed.Add(1)
		return false, 0
	}
	select {
	case l.tokens <- struct{}{}:
		l.admitted.Add(1)
		return true, 0
	default:
	}
	select {
	case l.waiters <- struct{}{}:
	default:
		l.shed.Add(1)
		return false, 0
	}
	l.queued.Add(1)
	t0 := time.Now()
	t := time.NewTimer(l.maxWait)
	defer t.Stop()
	select {
	case l.tokens <- struct{}{}:
		<-l.waiters
		l.admitted.Add(1)
		return true, time.Since(t0)
	case <-t.C:
		<-l.waiters
		l.shed.Add(1)
		return false, time.Since(t0)
	}
}

// Release returns a service slot claimed by a successful Acquire.
func (l *Limiter) Release() { <-l.tokens }

// AcquireN claims cost service slots for one batched request, so
// admission sees ingest cost in objects, not in frames — a 100-entry
// batch competes for capacity like 100 requests, not like one. cost is
// capped at the limiter's width (a batch larger than the whole limit
// must still be admissible). Slots free right now are taken greedily;
// the remainder is waited for up to maxWait in one queue slot. On
// timeout every held slot is returned and the whole batch is shed —
// holding a partial claim forever could deadlock two interleaved
// batches, while timed release merely sheds both under real overload.
// Every true return must be paired with ReleaseN(cost) for the same
// cost.
func (l *Limiter) AcquireN(cost int) bool {
	ok, _ := l.AcquireNWait(cost)
	return ok
}

// AcquireNWait is AcquireN plus the admission-queue wait it cost, with
// the same zero-on-fast-path contract as AcquireWait.
func (l *Limiter) AcquireNWait(cost int) (bool, time.Duration) {
	if cost <= 1 {
		return l.AcquireWait()
	}
	if l.overSoft() {
		l.shed.Add(1)
		return false, 0
	}
	if cap := cap(l.tokens); cost > cap {
		cost = cap
	}
	held := 0
	for ; held < cost; held++ {
		select {
		case l.tokens <- struct{}{}:
		default:
			goto wait
		}
	}
	l.admitted.Add(1)
	return true, 0

wait:
	select {
	case l.waiters <- struct{}{}:
	default:
		l.releaseHeld(held)
		l.shed.Add(1)
		return false, 0
	}
	l.queued.Add(1)
	{
		t0 := time.Now()
		t := time.NewTimer(l.maxWait)
		defer t.Stop()
		for held < cost {
			select {
			case l.tokens <- struct{}{}:
				held++
			case <-t.C:
				<-l.waiters
				l.releaseHeld(held)
				l.shed.Add(1)
				return false, time.Since(t0)
			}
		}
		<-l.waiters
		l.admitted.Add(1)
		return true, time.Since(t0)
	}
}

// ReleaseN returns the slots claimed by a successful AcquireN. cost
// must match the AcquireN argument (after its internal cap, applied
// here identically).
func (l *Limiter) ReleaseN(cost int) {
	if cost <= 1 {
		l.Release()
		return
	}
	if cap := cap(l.tokens); cost > cap {
		cost = cap
	}
	l.releaseHeld(cost)
}

func (l *Limiter) releaseHeld(n int) {
	for i := 0; i < n; i++ {
		<-l.tokens
	}
}

// overSoft reports whether the runtime soft limit is set and currently
// breached.
func (l *Limiter) overSoft() bool {
	s := l.soft.Load()
	return s > 0 && int64(len(l.tokens)) >= s
}

// SetLimit tightens (or restores) the effective concurrency limit at
// runtime — the adaptive policy's admission knob. n in (0, hard limit)
// sheds arrivals beyond n held slots; n <= 0 or >= the hard limit
// restores the constructed behavior. Enforcement is approximate (see
// the soft field); the hard limit remains the absolute bound.
func (l *Limiter) SetLimit(n int) {
	if n <= 0 || n >= cap(l.tokens) {
		l.soft.Store(0)
		return
	}
	l.soft.Store(int64(n))
}

// Limit returns the effective concurrency limit (soft if set, else the
// constructed hard limit).
func (l *Limiter) Limit() int {
	if s := l.soft.Load(); s > 0 {
		return int(s)
	}
	return cap(l.tokens)
}

// Inflight returns the number of currently held service slots.
func (l *Limiter) Inflight() int64 { return int64(len(l.tokens)) }

// Stats returns cumulative admission counters.
func (l *Limiter) Stats() (admitted, queued, shed int64) {
	return l.admitted.Load(), l.queued.Load(), l.shed.Load()
}

// Sheds returns the cumulative shed count (telemetry callback).
func (l *Limiter) Sheds() int64 { return l.shed.Load() }
