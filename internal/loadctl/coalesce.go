package loadctl

import (
	"context"
	"errors"
	"sync"
)

// ErrFlightAbandoned reports that a coalesced flight ended without a
// result — the winner panicked out of its read function. Waiters treat
// it like any transient failure and retry independently.
var ErrFlightAbandoned = errors.New("loadctl: coalesced flight abandoned")

// flight is one in-progress read a set of callers shares. data/err are
// written exactly once, before done is closed; waiters read them only
// after <-done, so no lock is needed on the result fields.
//
// done is created lazily, under Group.mu, by the first waiter: the
// overwhelmingly common solo flight (no concurrent duplicate) then
// costs no channel allocation at all — the uniform-workload overhead
// budget is paid for by exactly the reads that coalesce.
type flight struct {
	done chan struct{} // nil until a waiter joins (guarded by Group.mu)
	data []byte
	err  error
	// token is an opaque caller tag the winner stamps at flight
	// creation (under Group.mu) and followers read when they join —
	// request tracing passes the leader's span id so a follower's trace
	// names the flight it piggybacked on. Immutable while the flight is
	// in the map.
	token uint64
}

// Group coalesces concurrent identical reads: the first caller for a
// key becomes the winner and executes the fetch; callers arriving while
// the flight is open wait for — and share — the winner's result. Unlike
// a plain singleflight, waiting is context-aware: a waiter whose
// context expires detaches immediately instead of being held hostage by
// a slow winner.
//
// The shared byte slice must be treated as read-only by every caller.
type Group struct {
	mu      sync.Mutex
	flights map[string]*flight
	// free recycles flights that finished without ever having a waiter:
	// nobody else holds a reference to such a flight (waiters acquire it
	// only from the map, under mu), so reuse is safe and the solo flight
	// — the overwhelmingly common case under a uniform workload — runs
	// allocation-free.
	free []*flight
}

// freeListCap bounds the recycled-flight list.
const freeListCap = 32

// NewGroup creates an empty Group.
func NewGroup() *Group {
	return &Group{flights: make(map[string]*flight)}
}

// Fetcher executes the underlying read for a coalesced flight. Using an
// interface instead of a closure keeps the winner's fast path
// allocation-free: the caller passes its receiver once, nothing is
// captured per call.
type Fetcher interface {
	Fetch(ctx context.Context, key string) ([]byte, error)
}

// FetcherFunc adapts a function to Fetcher (tests and simple callers).
type FetcherFunc func(ctx context.Context, key string) ([]byte, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(ctx context.Context, key string) ([]byte, error) { return f(ctx, key) }

// Do executes f.Fetch once per key among concurrent callers. shared
// reports whether the result came from another caller's flight (true
// for waiters, false for the winner). A waiter whose ctx expires
// returns ctx.Err() without waiting for the winner.
//
// The winner runs the fetch under its own context; if that context is
// canceled the shared error will reflect it, and waiters — whose
// contexts may still be live — should retry.
func (g *Group) Do(ctx context.Context, key string, fetch Fetcher) (data []byte, err error, shared bool) {
	data, err, shared, _ = g.DoLinked(ctx, key, fetch, 0)
	return data, err, shared
}

// DoLinked is Do with leader/follower linkage: the winner registers
// token (an opaque tag — tracing passes its span id) on the flight, and
// every caller gets back the flight's leader token. The winner sees its
// own token; followers see the winner's, which is how a follower's
// trace records *whose* flight it waited on.
func (g *Group) DoLinked(ctx context.Context, key string, fetch Fetcher, token uint64) (data []byte, err error, shared bool, leader uint64) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		if f.done == nil {
			f.done = make(chan struct{})
		}
		done := f.done
		leader = f.token
		g.mu.Unlock()
		select {
		case <-done:
			return f.data, f.err, true, leader
		case <-ctx.Done():
			return nil, ctx.Err(), true, leader
		}
	}
	var f *flight
	if n := len(g.free); n > 0 {
		f = g.free[n-1]
		g.free = g.free[:n-1]
		f.err = ErrFlightAbandoned
	} else {
		f = &flight{err: ErrFlightAbandoned}
	}
	f.token = token
	g.flights[key] = f
	g.mu.Unlock()

	// The flight is removed from the map before done is closed, so a
	// caller arriving after completion starts a fresh flight rather
	// than reading a stale result. The deferred cleanup also runs if fn
	// panics: waiters then observe ErrFlightAbandoned instead of
	// hanging. The result fields are written before close(done), so
	// waiters reading them after <-done are ordered correctly. A flight
	// that never had a waiter is recycled; one with waiters is left to
	// them (they still read its result fields after <-done).
	defer func() {
		g.mu.Lock()
		delete(g.flights, key)
		done := f.done
		if done == nil && len(g.free) < freeListCap {
			f.data, f.err = nil, nil
			g.free = append(g.free, f)
		}
		g.mu.Unlock()
		if done != nil {
			close(done)
		}
	}()
	f.data, f.err = fetch.Fetch(ctx, key)
	return f.data, f.err, false, token
}

// Inflight returns the number of open flights (for tests and debug).
func (g *Group) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
