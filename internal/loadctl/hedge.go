package loadctl

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// hedgeWarmup is the number of latency samples required before hedging
// activates: firing hedges off a handful of observations would chase
// noise, and the subsystem must cost nothing on a fresh client.
const hedgeWarmup = 64

// Hedge derives the hedged-read trigger delay from the streaming p99 of
// ordinary (non-hedged) read latency: if a hot-key read has taken
// longer than 99% of recent reads, the owner is presumed busy and a
// second request is raced against a replica. The delay is clamped to
// [min, max] so a pathologically tight p99 cannot turn every read into
// a double-send and a pathologically loose one cannot disable hedging.
//
// Only non-hedged successes feed the estimator — hedged reads complete
// near the hedge delay by construction, and folding them back in would
// ratchet the p99 (and with it the delay) steadily downward.
type Hedge struct {
	// min/max are the clamp bounds in ns — atomics so the adaptive
	// policy controller can retune them at runtime (SetClamp) without
	// racing Observe's refresh.
	min, max atomic.Int64

	// tick samples Observe calls: only one in hedgeSample takes the
	// mutex, keeping the common-case cost of feeding the estimator to a
	// single atomic add on the read hot path.
	tick atomic.Uint64

	mu  sync.Mutex
	p99 *stats.P2Quantile
	n   int

	// cached is the current delay in ns, recomputed periodically under
	// the mutex and read lock-free on the read path. 0 = not ready.
	cached atomic.Int64
}

// hedgeSample is the Observe sampling rate: 1-in-4 keeps the estimator
// responsive (it warms within ~256 reads) while the other 3 calls cost
// one atomic add.
const hedgeSample = 4

// NewHedge creates a hedge policy clamped to [min, max].
func NewHedge(min, max time.Duration) *Hedge {
	h := &Hedge{p99: stats.NewP2Quantile(0.99)}
	h.min.Store(int64(min))
	h.max.Store(int64(max))
	return h
}

// SetClamp retunes the clamp bounds at runtime (adaptive policy knob)
// and immediately re-clamps the cached delay so the new bounds take
// effect without waiting for the next estimator refresh.
func (h *Hedge) SetClamp(min, max time.Duration) {
	if min <= 0 || max < min {
		return
	}
	h.min.Store(int64(min))
	h.max.Store(int64(max))
	h.mu.Lock()
	if h.cached.Load() != 0 {
		h.cached.Store(int64(h.clamp(time.Duration(h.p99.Value()))))
	}
	h.mu.Unlock()
}

// Clamp returns the current clamp bounds.
func (h *Hedge) Clamp() (min, max time.Duration) {
	return time.Duration(h.min.Load()), time.Duration(h.max.Load())
}

// Observe folds one non-hedged read latency into the p99 estimate
// (sampled 1-in-hedgeSample). The cached delay refreshes every 16
// retained samples once warm — Delay stays an atomic load on the hot
// path.
func (h *Hedge) Observe(d time.Duration) {
	if h.tick.Add(1)%hedgeSample != 0 {
		return
	}
	h.mu.Lock()
	h.p99.Add(float64(d))
	h.n++
	if h.n >= hedgeWarmup && h.n%16 == 0 {
		h.cached.Store(int64(h.clamp(time.Duration(h.p99.Value()))))
	}
	h.mu.Unlock()
}

func (h *Hedge) clamp(d time.Duration) time.Duration {
	if min := time.Duration(h.min.Load()); d < min {
		return min
	}
	if max := time.Duration(h.max.Load()); d > max {
		return max
	}
	return d
}

// Delay returns the hedge trigger delay and whether hedging is active
// (false until the estimator has warmed up). Lock-free.
func (h *Hedge) Delay() (time.Duration, bool) {
	d := h.cached.Load()
	if d == 0 {
		return 0, false
	}
	return time.Duration(d), true
}

// Samples returns the number of observations (for tests and debug).
func (h *Hedge) Samples() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}
