// Package loadctl is the hot-object load-control layer of the FT-Cache
// stack. The hash ring balances *placement* — every key has exactly one
// owner — but a skewed access pattern (Zipf-distributed sample
// popularity, a shared index file, a dataset manifest) still lands all
// of one key's traffic on a single node. Under the heavy-traffic regime
// the roadmap targets, that node saturates while its neighbours idle:
// placement balance without *load* balance.
//
// loadctl attacks the problem from four sides, all composable and all
// off by default (a client without a loadctl.Config behaves exactly as
// before):
//
//   - Read coalescing (coalesce.go): N concurrent reads of the same
//     path through one client collapse into a single flight; the
//     waiters share the winner's bytes. The win is largest on a cold or
//     just-failed-over key, where a thundering herd of misses would
//     otherwise all hit the PFS.
//   - Hot-key detection (sketch.go): a fixed-memory space-saving sketch,
//     sampled so the common case costs one atomic add, identifies the
//     keys that dominate the access distribution.
//   - Replica fan-out with hedged reads (p2c.go, hedge.go; driven by
//     the hvac client): keys flagged hot are pushed to the next R ring
//     successors and subsequent reads pick a server by
//     power-of-two-choices over observed per-node latency, hedging to a
//     second candidate when the first is slower than the running p99.
//   - Admission control (limiter.go; driven by the hvac server): a
//     concurrency/queue-depth limiter that sheds excess load with an
//     explicit overload status, which clients treat as a redirect
//     signal — never as failure-detector evidence.
package loadctl

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Config tunes the client-side load-control subsystem. The zero value
// of every field selects a sensible default (see withDefaults), so
// &loadctl.Config{} enables the subsystem with stock behavior.
type Config struct {
	// SketchSize is the number of key slots the hot-key sketch tracks
	// (the space-saving k). <= 0 selects 64.
	SketchSize int
	// SampleRate: one in SampleRate reads updates the sketch; the rest
	// pay only a lock-free hot-set lookup. <= 0 selects 8.
	SampleRate int
	// WindowTouches is the sketch aging window in sampled touches:
	// when a window completes, every count halves, so hotness tracks
	// the recent access distribution instead of all of history.
	// <= 0 selects 4096.
	WindowTouches int64
	// HotFraction is the share of recent (sampled, decayed) traffic at
	// which a key is declared hot. <= 0 selects 0.01 — a key taking more
	// than 1% of recent traffic is a fan-out candidate.
	HotFraction float64
	// Replicas is the number of ring successors a hot object is fanned
	// out to (beyond its owner). <= 0 selects 3.
	Replicas int
	// HedgeMin and HedgeMax clamp the p99-derived hedge delay.
	// Non-positive values select 250µs and 100ms.
	HedgeMin time.Duration
	HedgeMax time.Duration
}

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	if c.SketchSize <= 0 {
		c.SketchSize = 64
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 8
	}
	if c.WindowTouches <= 0 {
		c.WindowTouches = 4096
	}
	if c.HotFraction <= 0 {
		c.HotFraction = 0.01
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 250 * time.Microsecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 100 * time.Millisecond
	}
	return c
}

// Controller bundles the client-side load-control state for one hvac
// client: the coalescing group, the hot-key sketch, the per-node
// latency tracker and the hedge policy, plus the record of which hot
// keys have already been fanned out.
type Controller struct {
	cfg      Config
	Coalesce *Group
	Sketch   *Sketch
	Latency  *NodeLatency
	Hedge    *Hedge

	// replicas is the live fan-out width — initialized from cfg.Replicas
	// and runtime-tunable by the adaptive policy controller. Read
	// lock-free on the hot-key path.
	replicas atomic.Int32

	// pushed records hot keys whose replica fan-out has been issued, so
	// each client pushes a hot object at most once per ring epoch.
	pushed sync.Map // key → struct{}
}

// New assembles a Controller over the client's node set.
func New(cfg Config, nodes []cluster.NodeID) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:      cfg,
		Coalesce: NewGroup(),
		Sketch:   NewSketch(cfg),
		Latency:  NewNodeLatency(nodes),
		Hedge:    NewHedge(cfg.HedgeMin, cfg.HedgeMax),
	}
	c.replicas.Store(int32(cfg.Replicas))
	return c
}

// Config returns the resolved (defaulted) configuration as constructed.
// The live replica width may differ — see Replicas.
func (c *Controller) Config() Config { return c.cfg }

// Replicas returns the live hot-object fan-out width.
func (c *Controller) Replicas() int { return int(c.replicas.Load()) }

// SetReplicas retunes the fan-out width at runtime (adaptive policy
// knob). n <= 0 restores the constructed value. Existing fan-out
// records are invalidated so hot keys re-replicate at the new width.
func (c *Controller) SetReplicas(n int) {
	if n <= 0 {
		n = c.cfg.Replicas
	}
	if int32(n) != c.replicas.Swap(int32(n)) {
		c.InvalidateReplicas()
	}
}

// MarkPushed records the replica fan-out of key; it returns true only
// for the first caller, making the push idempotent per ring epoch.
func (c *Controller) MarkPushed(key string) bool {
	_, loaded := c.pushed.LoadOrStore(key, struct{}{})
	return !loaded
}

// InvalidateReplicas forgets every recorded fan-out. Called on ring
// membership changes (failure or revival): successor sets shift, so hot
// objects must re-replicate against the new ring. Replica copies left
// on no-longer-successor nodes age out of their LRU caches naturally —
// replicas are best-effort cache entries, never authoritative.
func (c *Controller) InvalidateReplicas() {
	c.pushed.Range(func(k, _ any) bool {
		c.pushed.Delete(k)
		return true
	})
}

// DebugSnapshot is the /debug/ftcache section: the hot-key table plus
// the policy's live parameters.
func (c *Controller) DebugSnapshot() map[string]any {
	top := c.Sketch.Top(16)
	keys := make([]map[string]any, len(top))
	for i, kc := range top {
		keys[i] = map[string]any{
			"key":   kc.Key,
			"count": kc.Count,
			"hot":   c.Sketch.IsHot(kc.Key),
		}
	}
	delay, ready := c.Hedge.Delay()
	return map[string]any{
		"top_keys":       keys,
		"hot_keys":       c.Sketch.HotCount(),
		"hot_flagged":    c.Sketch.Flagged(),
		"hedge_ready":    ready,
		"hedge_delay_us": delay.Microseconds(),
		"replicas":       c.Replicas(),
		"sample_rate":    c.cfg.SampleRate,
	}
}
