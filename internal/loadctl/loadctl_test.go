package loadctl

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestNodeLatencyPickPrefersFasterNode(t *testing.T) {
	nodes := []cluster.NodeID{"a", "b"}
	l := NewNodeLatency(nodes)
	for i := 0; i < 32; i++ {
		l.Observe("a", 1*time.Millisecond)
		l.Observe("b", 50*time.Millisecond)
	}
	picksA := 0
	for i := 0; i < 200; i++ {
		if l.Pick(nodes) == "a" {
			picksA++
		}
	}
	// With two candidates, p2c always compares a vs b and must always
	// choose the faster one once both EWMAs are established.
	if picksA != 200 {
		t.Fatalf("picked fast node %d/200 times", picksA)
	}
}

func TestNodeLatencyExploresUnobservedNodes(t *testing.T) {
	nodes := []cluster.NodeID{"a", "b", "c"}
	l := NewNodeLatency(nodes)
	l.Observe("a", 40*time.Millisecond)
	seen := make(map[cluster.NodeID]int)
	for i := 0; i < 500; i++ {
		seen[l.Pick(nodes)]++
	}
	if seen["b"] == 0 || seen["c"] == 0 {
		t.Fatalf("unobserved nodes starved: %+v", seen)
	}
}

func TestNodeLatencySingleCandidate(t *testing.T) {
	l := NewNodeLatency([]cluster.NodeID{"a"})
	if got := l.Pick([]cluster.NodeID{"a"}); got != "a" {
		t.Fatalf("Pick single = %q", got)
	}
	if got := l.Pick(nil); got != "" {
		t.Fatalf("Pick empty = %q", got)
	}
}

func TestHedgeWarmupAndClamp(t *testing.T) {
	h := NewHedge(1*time.Millisecond, 10*time.Millisecond)
	if _, ok := h.Delay(); ok {
		t.Fatal("hedge active before warmup")
	}
	// Observe is sampled 1-in-hedgeSample, so warming the estimator takes
	// hedgeSample times the warmup count. Samples at ~100µs: raw p99 is
	// below the 1ms floor → clamped up.
	for i := 0; i < 4*hedgeSample*hedgeWarmup; i++ {
		h.Observe(100 * time.Microsecond)
	}
	d, ok := h.Delay()
	if !ok {
		t.Fatal("hedge not active after warmup")
	}
	if d != 1*time.Millisecond {
		t.Fatalf("delay %v, want clamped to 1ms floor", d)
	}
	// Now samples at 1s: p99 grows past the 10ms ceiling → clamped down.
	for i := 0; i < 4*hedgeSample*hedgeWarmup; i++ {
		h.Observe(time.Second)
	}
	d, _ = h.Delay()
	if d != 10*time.Millisecond {
		t.Fatalf("delay %v, want clamped to 10ms ceiling", d)
	}
}

func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(2, 0, time.Millisecond)
	if !l.Acquire() || !l.Acquire() {
		t.Fatal("limiter refused within-limit requests")
	}
	if l.Acquire() {
		t.Fatal("limiter admitted past limit with zero queue")
	}
	if l.Inflight() != 2 {
		t.Fatalf("inflight %d, want 2", l.Inflight())
	}
	l.Release()
	if !l.Acquire() {
		t.Fatal("limiter refused after a release")
	}
	_, _, shed := l.Stats()
	if shed != 1 {
		t.Fatalf("shed count %d, want 1", shed)
	}
}

func TestLimiterQueueWaitsForSlot(t *testing.T) {
	l := NewLimiter(1, 1, 500*time.Millisecond)
	if !l.Acquire() {
		t.Fatal("first acquire failed")
	}
	got := make(chan bool, 1)
	go func() { got <- l.Acquire() }()
	time.Sleep(20 * time.Millisecond) // let the waiter queue up
	l.Release()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("queued request shed despite a freed slot")
		}
	case <-time.After(time.Second):
		t.Fatal("queued request never acquired")
	}
	_, queued, _ := l.Stats()
	if queued != 1 {
		t.Fatalf("queued count %d, want 1", queued)
	}
}

func TestLimiterQueueTimeoutSheds(t *testing.T) {
	l := NewLimiter(1, 4, 10*time.Millisecond)
	if !l.Acquire() {
		t.Fatal("first acquire failed")
	}
	start := time.Now()
	if l.Acquire() {
		t.Fatal("queued request admitted with no free slot")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("shed after %v, before the %v queue wait", elapsed, 10*time.Millisecond)
	}
}

func TestLimiterDisabled(t *testing.T) {
	if NewLimiter(0, 4, time.Millisecond) != nil {
		t.Fatal("limit<=0 must return the nil disabled sentinel")
	}
}

func TestLimiterConcurrentChurn(t *testing.T) {
	l := NewLimiter(4, 4, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if l.Acquire() {
					l.Release()
				}
			}
		}()
	}
	wg.Wait()
	if l.Inflight() != 0 {
		t.Fatalf("slots leaked: inflight %d", l.Inflight())
	}
	admitted, _, shed := l.Stats()
	if admitted+shed == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestControllerMarkPushedAndInvalidate(t *testing.T) {
	c := New(Config{}, []cluster.NodeID{"a", "b"})
	if !c.MarkPushed("k") {
		t.Fatal("first MarkPushed returned false")
	}
	if c.MarkPushed("k") {
		t.Fatal("second MarkPushed returned true")
	}
	c.InvalidateReplicas()
	if !c.MarkPushed("k") {
		t.Fatal("MarkPushed after invalidation returned false")
	}
	snap := c.DebugSnapshot()
	if _, ok := snap["top_keys"]; !ok {
		t.Fatalf("debug snapshot missing hot-key table: %v", snap)
	}
}
