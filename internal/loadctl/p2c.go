package loadctl

import (
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// NodeLatency tracks an exponentially weighted moving average of
// observed per-node read latency and picks among candidate replicas
// with power-of-two-choices: sample two candidates at random, send to
// the one with the lower EWMA. Randomizing the pair keeps a stale
// estimate from pinning all traffic on one node (the classic
// herd-on-the-minimum failure of deterministic least-loaded routing),
// while still skewing traffic away from slow or overloaded servers.
//
// The node set is fixed at construction (the client's endpoint map);
// observations for unknown nodes are dropped.
type NodeLatency struct {
	ewma map[cluster.NodeID]*atomic.Int64 // EWMA in ns; 0 = no samples yet
	rng  atomic.Uint64
}

// NewNodeLatency creates a tracker over nodes.
func NewNodeLatency(nodes []cluster.NodeID) *NodeLatency {
	m := make(map[cluster.NodeID]*atomic.Int64, len(nodes))
	for _, n := range nodes {
		m[n] = &atomic.Int64{}
	}
	return &NodeLatency{ewma: m}
}

// Observe folds one latency sample into node's EWMA (α = 1/8). The
// read-modify-write is deliberately unsynchronized: a lost update under
// a race only costs one sample of smoothing accuracy, never
// correctness, and the hot path stays a pair of atomics.
func (l *NodeLatency) Observe(node cluster.NodeID, d time.Duration) {
	cell, ok := l.ewma[node]
	if !ok {
		return
	}
	old := cell.Load()
	if old == 0 {
		cell.Store(int64(d))
		return
	}
	cell.Store(old + (int64(d)-old)/8)
}

// Get returns the current EWMA for node (0 when unobserved or unknown).
func (l *NodeLatency) Get(node cluster.NodeID) time.Duration {
	if cell, ok := l.ewma[node]; ok {
		return time.Duration(cell.Load())
	}
	return 0
}

// Pick chooses one of cands by power-of-two-choices on the latency
// EWMA. A node with no samples yet wins its comparison, so fresh
// replicas get explored instead of starved. Returns "" for an empty
// candidate list.
func (l *NodeLatency) Pick(cands []cluster.NodeID) cluster.NodeID {
	switch len(cands) {
	case 0:
		return ""
	case 1:
		return cands[0]
	}
	r := l.next()
	i := int(r % uint64(len(cands)))
	j := int((r >> 32) % uint64(len(cands)))
	if i == j {
		j++
		if j == len(cands) {
			j = 0
		}
	}
	a, b := l.Get(cands[i]), l.Get(cands[j])
	switch {
	case a == 0:
		return cands[i]
	case b == 0:
		return cands[j]
	case b < a:
		return cands[j]
	default:
		return cands[i]
	}
}

// next is a splitmix64 step over an atomic state: cheap, lock-free,
// statistically good enough for replica selection.
func (l *NodeLatency) next() uint64 {
	z := l.rng.Add(0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
