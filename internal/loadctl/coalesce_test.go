package loadctl

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fn adapts an argless closure to Fetcher for tests.
func fn(f func() ([]byte, error)) Fetcher {
	return FetcherFunc(func(context.Context, string) ([]byte, error) { return f() })
}

func TestCoalesceSharesOneFlight(t *testing.T) {
	g := NewGroup()
	var calls atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters+1)
	sharedFlags := make([]bool, waiters+1)
	run := func(i int) {
		defer wg.Done()
		data, err, shared := g.Do(context.Background(), "k", fn(func() ([]byte, error) {
			calls.Add(1)
			close(entered)
			<-release
			return []byte("value"), nil
		}))
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
		results[i] = data
		sharedFlags[i] = shared
	}

	wg.Add(1)
	go run(0)
	<-entered // winner is inside fn; everyone else must coalesce
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go run(i)
	}
	// Give the waiters time to join the flight before releasing it.
	for deadline := time.Now().Add(time.Second); g.Inflight() != 1 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	sharedCount := 0
	for i, data := range results {
		if string(data) != "value" {
			t.Fatalf("caller %d got %q", i, data)
		}
		if sharedFlags[i] {
			sharedCount++
		}
	}
	if sharedCount != waiters {
		t.Fatalf("%d callers reported shared, want %d", sharedCount, waiters)
	}
	if g.Inflight() != 0 {
		t.Fatalf("flight leaked: %d inflight", g.Inflight())
	}
}

func TestCoalesceWaiterDetachesOnContextCancel(t *testing.T) {
	g := NewGroup()
	release := make(chan struct{})
	entered := make(chan struct{})
	go g.Do(context.Background(), "k", fn(func() ([]byte, error) {
		close(entered)
		<-release
		return nil, nil
	}))
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", fn(func() ([]byte, error) { return nil, nil }))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter did not detach from the flight")
	}
	close(release)
}

func TestCoalesceWinnerErrorIsShared(t *testing.T) {
	g := NewGroup()
	boom := errors.New("boom")
	release := make(chan struct{})
	entered := make(chan struct{})
	go g.Do(context.Background(), "k", fn(func() ([]byte, error) {
		close(entered)
		<-release
		return nil, boom
	}))
	<-entered

	done := make(chan struct{})
	var gotErr error
	var gotShared bool
	go func() {
		_, gotErr, gotShared = g.Do(context.Background(), "k", fn(func() ([]byte, error) { return nil, nil }))
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
	if !errors.Is(gotErr, boom) || !gotShared {
		t.Fatalf("waiter got (%v, shared=%v), want (boom, true)", gotErr, gotShared)
	}
}

func TestCoalesceWinnerPanicAbandonsFlight(t *testing.T) {
	g := NewGroup()
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		g.Do(context.Background(), "k", fn(func() ([]byte, error) {
			close(entered)
			<-release
			panic("winner died")
		}))
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(context.Background(), "k", fn(func() ([]byte, error) { return nil, nil }))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, ErrFlightAbandoned) {
			t.Fatalf("waiter error %v, want ErrFlightAbandoned", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter hung on a panicked flight")
	}
	if g.Inflight() != 0 {
		t.Fatalf("flight leaked after panic")
	}
}

func TestCoalesceSequentialCallsRunIndependently(t *testing.T) {
	g := NewGroup()
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		_, err, shared := g.Do(context.Background(), "k", fn(func() ([]byte, error) {
			calls.Add(1)
			return nil, nil
		}))
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("sequential calls coalesced: %d runs", calls.Load())
	}
}
