package loadctl

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Sketch is a fixed-memory hot-key detector: a space-saving top-k
// counter with sampled admission and a lock-free published hot set.
//
// Memory is bounded by k entries regardless of key cardinality. The
// common case — Touch on a key that is not being sampled this call —
// costs one atomic add plus a read of an immutable map snapshot; only
// one in SampleRate calls takes the sketch mutex to update counts.
//
// Space-saving overestimates: an entry's count is at most its true
// (sampled) frequency plus the minimum count it inherited at insertion.
// Hotness is therefore judged on the *guaranteed* count (count minus
// inherited error), so a uniform workload — where every slot's count is
// mostly inherited churn — never flags anything hot.
//
// Counts age by halving once per window of sampled touches, so hotness
// tracks the recent distribution: a key that cools off is demoted
// within a window or two.
//
// The hot threshold is relative: a key is hot when its guaranteed count
// exceeds HotFraction of the decayed total of sampled touches (with a
// small absolute floor so a handful of accesses can never flag). Tying
// the threshold to observed traffic instead of the configured window
// means a low-rate client flags its dominant keys just as a high-rate
// one does — hotness is about the shape of the distribution, not the
// absolute rate.
type Sketch struct {
	k       int
	sample  uint64
	window  int64
	hotFrac float64 // share of decayed sampled traffic ⇒ hot

	tick atomic.Uint64
	hot  atomic.Pointer[map[string]struct{}] // immutable snapshot

	mu      sync.Mutex
	counts  map[string]*ssEntry
	touches int64 // sampled touches in the current window
	weight  int64 // decayed total of sampled touches (ages with counts)
	flagged int64 // cumulative keys ever promoted to hot
}

// ssEntry is one space-saving slot. errBound is the count inherited
// from the evicted minimum at insertion; count - errBound is the
// guaranteed number of (sampled) touches actually observed.
type ssEntry struct {
	count    int64
	errBound int64
}

// KeyCount is one row of the sketch's top-k table.
type KeyCount struct {
	Key   string
	Count int64 // guaranteed sampled count
}

// NewSketch creates a sketch from a resolved Config.
func NewSketch(cfg Config) *Sketch {
	cfg = cfg.withDefaults()
	s := &Sketch{
		k:       cfg.SketchSize,
		sample:  uint64(cfg.SampleRate),
		window:  cfg.WindowTouches,
		hotFrac: cfg.HotFraction,
		counts:  make(map[string]*ssEntry, cfg.SketchSize),
	}
	empty := make(map[string]struct{})
	s.hot.Store(&empty)
	return s
}

// minHotCount floors the hot threshold: below this many guaranteed
// sampled touches nothing is hot, however skewed a tiny sample looks.
const minHotCount = 8

// thresholdLocked is the current guaranteed-count bar for hotness.
func (s *Sketch) thresholdLocked() int64 {
	t := int64(s.hotFrac * float64(s.weight))
	if t < minHotCount {
		t = minHotCount
	}
	return t
}

// IsHot reports whether key is in the published hot set. Lock-free.
func (s *Sketch) IsHot(key string) bool {
	m := *s.hot.Load()
	if len(m) == 0 {
		return false
	}
	_, ok := m[key]
	return ok
}

// HotCount returns the size of the published hot set.
func (s *Sketch) HotCount() int { return len(*s.hot.Load()) }

// Flagged returns the cumulative number of hot promotions.
func (s *Sketch) Flagged() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flagged
}

// Touch records one access to key and reports whether the key is
// currently hot. Only one in SampleRate calls updates the sketch; the
// rest answer from the published hot set.
func (s *Sketch) Touch(key string) bool {
	if s.sample > 1 && s.tick.Add(1)%s.sample != 0 {
		return s.IsHot(key)
	}
	s.mu.Lock()
	s.touches++
	s.weight++
	if s.touches >= s.window {
		s.ageLocked()
	}
	e, ok := s.counts[key]
	if !ok {
		if len(s.counts) >= s.k {
			minKey, minCount := s.minLocked()
			delete(s.counts, minKey)
			e = &ssEntry{count: minCount, errBound: minCount}
		} else {
			e = &ssEntry{}
		}
		s.counts[key] = e
	}
	e.count++
	hot := e.count-e.errBound >= s.thresholdLocked()
	if hot != s.IsHot(key) {
		s.publishLocked()
	}
	s.mu.Unlock()
	return hot
}

// evictScanWidth bounds the eviction scan: instead of a full O(k) pass
// for the global minimum, the scan inspects this many slots (Go map
// iteration order is randomized, so repeated scans cover the table) and
// evicts the smallest seen. Evicting a near-minimum instead of the true
// minimum only inflates the inherited errBound, which makes hotness
// judgments more conservative — never a false hot.
const evictScanWidth = 8

// minLocked returns a near-minimum slot (bounded scan, see above).
func (s *Sketch) minLocked() (string, int64) {
	first := true
	var minKey string
	var minCount int64
	seen := 0
	for k, e := range s.counts {
		if first || e.count < minCount {
			minKey, minCount, first = k, e.count, false
		}
		if seen++; seen >= evictScanWidth {
			break
		}
	}
	return minKey, minCount
}

// ageLocked halves every count at a window boundary and drops emptied
// slots, then republishes the hot set.
func (s *Sketch) ageLocked() {
	s.touches = 0
	s.weight /= 2
	for k, e := range s.counts {
		e.count /= 2
		e.errBound /= 2
		if e.count == 0 {
			delete(s.counts, k)
		}
	}
	s.publishLocked()
}

// publishLocked rebuilds the immutable hot-set snapshot from the
// current counts. Keys entering the set for the first time since the
// last publish are counted as promotions.
func (s *Sketch) publishLocked() {
	old := *s.hot.Load()
	next := make(map[string]struct{})
	bar := s.thresholdLocked()
	for k, e := range s.counts {
		if e.count-e.errBound >= bar {
			next[k] = struct{}{}
			if _, was := old[k]; !was {
				s.flagged++
			}
		}
	}
	s.hot.Store(&next)
}

// Top returns up to n tracked keys by guaranteed count, descending.
func (s *Sketch) Top(n int) []KeyCount {
	s.mu.Lock()
	out := make([]KeyCount, 0, len(s.counts))
	for k, e := range s.counts {
		out = append(out, KeyCount{Key: k, Count: e.count - e.errBound})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
