package loadctl

import (
	"fmt"
	"sync"
	"testing"
)

// sketchConfig returns an unsampled sketch config so tests are exact.
func sketchConfig() Config {
	return Config{
		SketchSize:    8,
		SampleRate:    1,
		WindowTouches: 1 << 20, // effectively no aging unless a test wants it
		HotFraction:   0.02,
	}
}

func TestSketchFlagsSkewedKey(t *testing.T) {
	cfg := sketchConfig()
	s := NewSketch(cfg)
	// One dominant key (50% of traffic) among background noise.
	for i := 0; i < 400; i++ {
		s.Touch("hot")
		s.Touch(fmt.Sprintf("cold-%d", i%100))
	}
	if !s.IsHot("hot") {
		t.Fatal("dominant key not flagged hot")
	}
	if s.IsHot("cold-1") {
		t.Fatal("background key flagged hot")
	}
	top := s.Top(1)
	if len(top) == 0 || top[0].Key != "hot" {
		t.Fatalf("Top(1) = %+v, want the hot key first", top)
	}
	if s.Flagged() < 1 {
		t.Fatal("promotion not counted")
	}
}

func TestSketchUniformWorkloadStaysCold(t *testing.T) {
	// More keys than slots, uniform access: space-saving slots churn and
	// inherit counts, but the guaranteed count stays tiny — nothing may
	// be flagged hot.
	s := NewSketch(sketchConfig())
	for round := 0; round < 2000; round++ {
		for i := 0; i < 64; i++ {
			s.Touch(fmt.Sprintf("key-%d", i))
		}
	}
	if n := s.HotCount(); n != 0 {
		t.Fatalf("uniform workload flagged %d hot keys: %+v", n, s.Top(8))
	}
}

func TestSketchAgingDemotesCooledKey(t *testing.T) {
	cfg := sketchConfig()
	cfg.WindowTouches = 256
	s := NewSketch(cfg)
	for i := 0; i < 100; i++ {
		s.Touch("flash")
	}
	if !s.IsHot("flash") {
		t.Fatal("key not hot after burst")
	}
	// The key cools off; several aging windows of other traffic halve it
	// below threshold and it must be demoted.
	for i := 0; i < 8*256; i++ {
		s.Touch(fmt.Sprintf("other-%d", i%4))
	}
	if s.IsHot("flash") {
		t.Fatal("cooled key still flagged hot after aging")
	}
}

func TestSketchBoundedMemory(t *testing.T) {
	cfg := sketchConfig()
	cfg.SketchSize = 16
	s := NewSketch(cfg)
	for i := 0; i < 100000; i++ {
		s.Touch(fmt.Sprintf("key-%d", i))
	}
	if n := len(s.Top(1 << 20)); n > 16 {
		t.Fatalf("sketch holds %d entries, cap is 16", n)
	}
}

// TestSketchRace hammers the sketch from many goroutines; run with
// -race (the CI loadctl job does) to verify the sampled fast path, the
// published hot set and the locked update path are data-race free.
func TestSketchRace(t *testing.T) {
	cfg := Config{SketchSize: 32, SampleRate: 4, WindowTouches: 512, HotFraction: 0.05}
	s := NewSketch(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				switch i % 4 {
				case 0:
					s.Touch("hot")
				case 1:
					s.Touch(fmt.Sprintf("w%d-%d", w, i%97))
				case 2:
					s.IsHot("hot")
				default:
					if i%1000 == 0 {
						s.Top(4)
					} else {
						s.Touch("warm")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if !s.IsHot("hot") {
		t.Log("hot key not flagged under race mix (timing-dependent, not fatal)")
	}
}
