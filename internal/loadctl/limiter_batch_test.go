package loadctl

import (
	"sync"
	"testing"
	"time"
)

func TestAcquireNTakesCostSlots(t *testing.T) {
	l := NewLimiter(8, 0, time.Millisecond)
	if !l.AcquireN(5) {
		t.Fatal("AcquireN(5) on an idle limiter failed")
	}
	if got := l.Inflight(); got != 5 {
		t.Fatalf("inflight=%d, want 5", got)
	}
	// 3 slots left: a 3-wide batch fits, a single more does not (queue 0).
	if !l.AcquireN(3) {
		t.Fatal("AcquireN(3) with 3 free slots failed")
	}
	if l.Acquire() {
		t.Fatal("Acquire succeeded on a full limiter")
	}
	l.ReleaseN(5)
	l.ReleaseN(3)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after release=%d, want 0", got)
	}
}

func TestAcquireNCostCappedAtLimit(t *testing.T) {
	l := NewLimiter(4, 0, time.Millisecond)
	// A batch wider than the whole limiter must still be admissible —
	// cost caps at the limit, and ReleaseN applies the same cap.
	if !l.AcquireN(100) {
		t.Fatal("over-wide batch not admitted on idle limiter")
	}
	if got := l.Inflight(); got != 4 {
		t.Fatalf("inflight=%d, want 4 (capped)", got)
	}
	l.ReleaseN(100)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after capped release=%d, want 0", got)
	}
}

func TestAcquireNTimeoutReleasesPartialClaim(t *testing.T) {
	l := NewLimiter(4, 4, 5*time.Millisecond)
	if !l.AcquireN(3) {
		t.Fatal("setup claim failed")
	}
	// Only 1 slot free: a 3-wide batch grabs it, waits, times out — and
	// must hand the partial claim back.
	if l.AcquireN(3) {
		t.Fatal("AcquireN should shed when slots never free")
	}
	if got := l.Inflight(); got != 3 {
		t.Fatalf("inflight=%d after shed, want 3 (partial claim returned)", got)
	}
	_, _, shed := l.Stats()
	if shed != 1 {
		t.Fatalf("shed=%d, want 1", shed)
	}
	l.ReleaseN(3)
}

func TestAcquireNWaitsForFreedSlots(t *testing.T) {
	l := NewLimiter(4, 4, time.Second)
	if !l.AcquireN(4) {
		t.Fatal("setup claim failed")
	}
	done := make(chan bool, 1)
	go func() { done <- l.AcquireN(2) }()
	time.Sleep(5 * time.Millisecond) // let the waiter queue
	l.ReleaseN(4)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("queued AcquireN shed despite freed slots")
		}
	case <-time.After(time.Second):
		t.Fatal("queued AcquireN never admitted")
	}
	l.ReleaseN(2)
}

func TestAcquireNOneIsAcquire(t *testing.T) {
	l := NewLimiter(2, 0, time.Millisecond)
	if !l.AcquireN(1) {
		t.Fatal("AcquireN(1) failed")
	}
	if got := l.Inflight(); got != 1 {
		t.Fatalf("inflight=%d, want 1", got)
	}
	l.ReleaseN(1)
}

// TestAcquireNInterleavedBatchesNoDeadlock: two batches each wanting
// more than half the limiter contend; timed release guarantees progress
// (no permanent mutual partial-claim deadlock).
func TestAcquireNInterleavedBatchesNoDeadlock(t *testing.T) {
	l := NewLimiter(8, 8, 2*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if l.AcquireN(6) {
					l.ReleaseN(6)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("interleaved AcquireN batches deadlocked")
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("leaked %d slots", got)
	}
}
