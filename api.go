package repro

import (
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dltrain"
	"repro/internal/ftcache"
	"repro/internal/hashring"
	"repro/internal/hvac"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Core cluster surface.
type (
	// Cluster is a running FT-Cache deployment (servers + shared PFS).
	Cluster = core.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = core.ClusterConfig
	// NodeID identifies a node.
	NodeID = core.NodeID
	// FailureMode selects how a node is taken down by fault injection.
	FailureMode = core.FailureMode
	// Client is the fault-tolerant HVAC client.
	Client = hvac.Client
	// Router is the pluggable fault-tolerance policy.
	Router = hvac.Router
	// IngestConfig enables the batched async put pipeline on clients
	// (ClusterConfig.Ingest / ClientConfig.Ingest).
	IngestConfig = hvac.IngestConfig
	// Dataset describes a training-file population.
	Dataset = workload.Dataset
	// Ring is the consistent-hash ring with virtual nodes.
	Ring = hashring.Ring
	// RingConfig configures a Ring.
	RingConfig = hashring.Config
	// StrategyKind names a fault-tolerance strategy.
	StrategyKind = ftcache.StrategyKind
	// Trainer runs data-parallel training against a live Cluster.
	Trainer = dltrain.Trainer
	// TrainConfig configures a Trainer.
	TrainConfig = dltrain.Config
	// TrainReport is a training run's outcome.
	TrainReport = dltrain.Report
	// TrainFailure schedules a node failure during a live training run.
	TrainFailure = dltrain.FailureEvent
	// Heartbeat is the proactive failure prober (extension to the
	// paper's passive timeout detection).
	Heartbeat = cluster.Heartbeat
	// HeartbeatConfig tunes the prober.
	HeartbeatConfig = cluster.HeartbeatConfig
	// Checkpointer persists model state across failures (two-tier:
	// node-local NVMe + PFS).
	Checkpointer = checkpoint.Checkpointer
	// CheckpointMeta identifies one checkpoint.
	CheckpointMeta = checkpoint.Meta
	// CheckpointConfig tunes retention and namespacing.
	CheckpointConfig = checkpoint.Config
)

// Fault-tolerance strategies (paper §IV / §V-A).
const (
	// StrategyNoFT is the original HVAC baseline: any node failure
	// terminates the job.
	StrategyNoFT = ftcache.KindNoFT
	// StrategyPFS is FT w/ PFS: redirect lost files to the parallel file
	// system for the rest of the job.
	StrategyPFS = ftcache.KindPFS
	// StrategyNVMe is FT w/ NVMe: hash-ring elastic recaching — the
	// paper's contribution.
	StrategyNVMe = ftcache.KindNVMe
)

// Failure modes for fault injection.
const (
	// FailUnresponsive leaves connections up but the server silent.
	FailUnresponsive = core.FailUnresponsive
	// FailKill closes the server and its connections outright.
	FailKill = core.FailKill
)

// NewCluster boots cfg.Nodes HVAC servers over a fresh shared PFS.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewCluster(cfg) }

// NewRing creates a consistent-hash ring.
func NewRing(cfg RingConfig, nodes []NodeID) *Ring {
	return hashring.NewWithNodes(cfg, nodes)
}

// NewTrainer creates a data-parallel trainer over a live cluster.
func NewTrainer(cfg TrainConfig) (*Trainer, error) { return dltrain.New(cfg) }

// TrainDataset adapts a Dataset for TrainConfig.
func TrainDataset(ds Dataset) dltrain.DatasetAdapter { return dltrain.FromWorkload(ds) }

// CosmoFlowTrain is the paper's training split geometry (524,288 files,
// ~1.3 TB). Use Dataset.Scaled and Dataset.WithFileBytes for local runs.
func CosmoFlowTrain() Dataset { return workload.CosmoFlowTrain() }

// CosmoFlowValidation is the paper's validation split geometry.
func CosmoFlowValidation() Dataset { return workload.CosmoFlowValidation() }

// NewHeartbeat creates a proactive failure prober feeding the client's
// detector; the client itself serves as the Pinger:
//
//	hb := repro.NewHeartbeat(client, repro.HeartbeatConfig{})
//	hb.Start()
//	defer hb.Stop()
func NewHeartbeat(client *Client, cfg HeartbeatConfig) *Heartbeat {
	return cluster.NewHeartbeat(client.Tracker(), client, cfg)
}

// NewCheckpointer creates a two-tier checkpointer: fast local writes
// drained asynchronously to the cluster's PFS. localCapacity bounds the
// local tier (0 = unbounded).
func NewCheckpointer(c *Cluster, localCapacity int64, cfg CheckpointConfig) (*Checkpointer, error) {
	return checkpoint.New(storage.NewNVMe(localCapacity), c.PFS(), cfg)
}
