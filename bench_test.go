package repro_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each runs the corresponding experiment at QuickScale (same
// shapes as the paper, seconds of CPU) and reports the headline numbers
// as custom metrics, so `go test -bench=. -benchmem` regenerates every
// result. For paper-scale output use `go run ./cmd/ftcbench -exp all`.

import (
	"context"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/ftcache"
	"repro/internal/loadsim"
	"repro/internal/trainsim"
)

func quick() experiments.Scale { return experiments.QuickScale() }

// BenchmarkTable1 regenerates Table I (job-failure analysis).
func BenchmarkTable1(b *testing.B) {
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Table1(quick())
	}
	b.ReportMetric(100*last.Table.FailureRatio(), "failure-pct")
	b.ReportMetric(100*last.Table.ShareOfFailures("TIMEOUT"), "timeout-share-pct")
}

// BenchmarkFig1 regenerates Fig 1 (weekly elapsed time of failed jobs).
func BenchmarkFig1(b *testing.B) {
	var last experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig1(quick())
	}
	b.ReportMetric(last.OverallMinutes, "overall-mean-min")
}

// BenchmarkFig2 regenerates Fig 2 (failure mix by node count / elapsed).
func BenchmarkFig2(b *testing.B) {
	var last experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig2(quick())
	}
	top := last.ByNodes[len(last.ByNodes)-1]
	b.ReportMetric(100*top.NodeFailureClassShare(), "topbucket-nf+to-pct")
}

// BenchmarkFig5a regenerates Fig 5(a): no-failure end-to-end time.
func BenchmarkFig5a(b *testing.B) {
	var last experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig5a(quick())
	}
	for _, row := range last.Rows {
		if row.Strategy == ftcache.KindNVMe {
			b.ReportMetric(row.Mean.Seconds(), "nvme-"+itoa(row.Nodes)+"n-sec")
		}
	}
}

// BenchmarkFig5b regenerates Fig 5(b): 5 random failures after epoch 1.
// The paper's headline — FT w/ NVMe beats FT w/ PFS by 24.9% at 1024
// nodes — appears as the gap metric.
func BenchmarkFig5b(b *testing.B) {
	var last experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig5b(quick())
	}
	scale := quick()
	for _, n := range scale.Nodes {
		b.ReportMetric(100*last.Gap(n), "gap-"+itoa(n)+"n-pct")
	}
}

// BenchmarkFig6a regenerates Fig 6(a): per-epoch analysis around a
// failure.
func BenchmarkFig6a(b *testing.B) {
	var last experiments.Fig6aResult
	for i := 0; i < b.N; i++ {
		last = experiments.Fig6a(quick())
	}
	row := last.Rows[len(last.Rows)-1]
	if row.NoFailure > 0 {
		b.ReportMetric(float64(row.PFSRedirect)/float64(row.NoFailure), "pfs-redirect-x")
		b.ReportMetric(float64(row.NVMeRecached)/float64(row.NoFailure), "nvme-recached-x")
	}
}

// BenchmarkFig6b regenerates Fig 6(b): the virtual-node sweep.
func BenchmarkFig6b(b *testing.B) {
	var last experiments.Fig6bResult
	for i := 0; i < b.N; i++ {
		last = experiments.Fig6b(quick())
	}
	pts := last.Points
	b.ReportMetric(pts[0].ReceiverMean, "receivers-v10")
	b.ReportMetric(pts[len(pts)-1].ReceiverMean, "receivers-v1000")
}

// --- ablations ---------------------------------------------------------

// BenchmarkAblationVirtualNodeCost quantifies the Fig 6(b) trade-off the
// paper discusses: more virtual nodes improve balance but grow the ring.
func BenchmarkAblationVirtualNodeCost(b *testing.B) {
	for _, v := range []int{10, 100, 1000} {
		b.Run("vnodes="+itoa(v), func(b *testing.B) {
			nodes := make([]repro.NodeID, 256)
			for i := range nodes {
				nodes[i] = repro.NodeID(itoa(i))
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ring := repro.NewRing(repro.RingConfig{VirtualNodes: v}, nodes)
				ring.Owner("cosmoUniverse/train/univ_0001234.tfrecord")
			}
		})
	}
}

// BenchmarkAblationDetectionThreshold measures how the TIMEOUT_LIMIT
// knob trades detection latency against runtime under a single failure.
func BenchmarkAblationDetectionThreshold(b *testing.B) {
	for _, limit := range []int{1, 3, 10} {
		b.Run("limit="+itoa(limit), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				cfg := trainsim.Frontier(64, ftcache.KindNVMe)
				cfg.Dataset = repro.CosmoFlowTrain().Scaled(64)
				cfg.DetectionTime = time.Duration(limit) * time.Second
				cfg.Failures = []trainsim.FailureSpec{{Epoch: 1, Frac: 0.01, Node: -1}}
				total += trainsim.Run(cfg).Total
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "sim-total-sec")
		})
	}
}

// BenchmarkAblationLoadTrial isolates one Fig 6(b) Monte-Carlo trial.
func BenchmarkAblationLoadTrial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loadsim.Run(loadsim.Config{
			PhysicalNodes: 256, VirtualNodes: 100, Files: 16384,
			Trials: 1, Seed: int64(i),
		})
	}
}

// BenchmarkExtReplication runs the replication-vs-recache extension.
func BenchmarkExtReplication(b *testing.B) {
	var last experiments.ExtReplicationResult
	for i := 0; i < b.N; i++ {
		last = experiments.ExtReplication(quick())
	}
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(float64(row.RecachePFSReads), "recache-pfs-reads")
	b.ReportMetric(float64(row.ReplicatedPFSReads), "replicated-pfs-reads")
}

// BenchmarkExtVnodeSweep runs the end-to-end virtual-node ablation.
func BenchmarkExtVnodeSweep(b *testing.B) {
	var last experiments.ExtVnodeSweepResult
	for i := 0; i < b.N; i++ {
		last = experiments.ExtVnodeSweep(quick())
	}
	b.ReportMetric(last.Rows[0].Total.Seconds(), "v1-total-sec")
	b.ReportMetric(last.Rows[2].Total.Seconds(), "v100-total-sec")
}

// BenchmarkAblationDetectionMode compares the paper's passive (read-path
// timeout) detection against the proactive heartbeat extension: time
// from node death to first successful post-failure read of one of its
// files.
func BenchmarkAblationDetectionMode(b *testing.B) {
	for _, proactive := range []bool{false, true} {
		name := "passive"
		if proactive {
			name = "heartbeat"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += measureDetection(b, proactive)
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "fail-to-read-ms")
		})
	}
}

func measureDetection(b *testing.B, proactive bool) time.Duration {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        4,
		Strategy:     repro.StrategyNVMe,
		RPCTimeout:   25 * time.Millisecond,
		TimeoutLimit: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ds := repro.CosmoFlowTrain().Scaled(16384).WithFileBytes(256)
	cluster.Stage(ds)
	client, _, err := cluster.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	for i := 0; i < ds.NumFiles; i++ {
		client.Read(ctx, ds.FilePath(i))
	}
	if proactive {
		hb := repro.NewHeartbeat(client, repro.HeartbeatConfig{
			Interval: 5 * time.Millisecond,
			Timeout:  25 * time.Millisecond,
		})
		hb.Start()
		defer hb.Stop()
	}
	victim := cluster.Nodes()[1]
	start := time.Now()
	cluster.Fail(victim, repro.FailUnresponsive)
	if proactive {
		// Give the prober the same observation window a read would get.
		for client.Tracker().IsAlive(victim) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < ds.NumFiles; i++ {
		if _, err := client.Read(ctx, ds.FilePath(i)); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start)
}

// BenchmarkLiveReadFailover measures a live read that fails over after a
// node death (detection + ring removal + re-route + recache).
func BenchmarkLiveReadFailover(b *testing.B) {
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:        4,
		Strategy:     repro.StrategyNVMe,
		RPCTimeout:   20 * time.Millisecond,
		TimeoutLimit: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ds := repro.CosmoFlowTrain().Scaled(8192).WithFileBytes(4096)
	cluster.Stage(ds)
	client, _, err := cluster.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	for i := 0; i < ds.NumFiles; i++ {
		client.Read(ctx, ds.FilePath(i))
	}
	cluster.Fail(cluster.Nodes()[0], repro.FailUnresponsive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(ctx, ds.FilePath(i%ds.NumFiles)); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
